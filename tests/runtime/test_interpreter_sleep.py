"""Abstract-time sleep: tick accounting and clock fast-forward."""

from repro.core import RandomScheduler
from repro.runtime import Execution, Program, SharedVar, ops


class TestSleep:
    def test_sleep_delays_relative_to_peer(self):
        order = []

        def make():
            def sleeper():
                yield ops.sleep(50)
                order.append("sleeper")

            def busy():
                for _ in range(5):
                    yield ops.yield_point()
                order.append("busy")

            def main():
                a = yield ops.spawn(sleeper)
                b = yield ops.spawn(busy)
                yield ops.join(b)
                yield ops.join(a)

            return main()

        for seed in range(10):
            order.clear()
            Execution(Program(make), seed=seed).run(RandomScheduler())
            assert order == ["busy", "sleeper"], f"seed {seed}: {order}"

    def test_clock_fast_forwards_when_only_sleepers_remain(self):
        def make():
            def main():
                yield ops.sleep(10_000)

            return main()

        execution = Execution(Program(make), max_steps=500)
        result = execution.run(RandomScheduler())
        # Without fast-forward this would burn 10k steps and truncate.
        assert not result.truncated
        assert not result.deadlock
        assert execution.step_count >= 10_000  # the clock really advanced

    def test_two_sleepers_wake_in_order(self):
        order = []

        def make():
            def napper(name, ticks):
                yield ops.sleep(ticks)
                order.append(name)

            def main():
                a = yield ops.spawn(napper, "long", 500)
                b = yield ops.spawn(napper, "short", 100)
                yield ops.join(a)
                yield ops.join(b)

            return main()

        for seed in range(5):
            order.clear()
            Execution(Program(make), seed=seed).run(RandomScheduler())
            assert order == ["short", "long"], f"seed {seed}: {order}"

    def test_sleep_zero_still_yields(self):
        def make():
            def main():
                yield ops.sleep(0)

            return main()

        result = Execution(Program(make)).run(RandomScheduler())
        assert not result.deadlock

    def test_sleeper_does_not_block_others(self):
        def make():
            x = SharedVar("x", 0)

            def sleeper():
                yield ops.sleep(30)

            def writer():
                yield x.write(1)

            def main():
                a = yield ops.spawn(sleeper)
                b = yield ops.spawn(writer)
                yield ops.join(b)
                value = yield x.read()
                assert value == 1
                yield ops.join(a)

            return main()

        result = Execution(Program(make)).run(RandomScheduler())
        assert not result.crashes and not result.deadlock
