"""Observer protocol: fan-out, tracing, MemEvent gating."""

from repro.core import RandomScheduler
from repro.runtime import (
    EventTrace,
    Execution,
    ExecutionObserver,
    MemEvent,
    ObserverChain,
    Program,
    SharedVar,
    ops,
)


def _tiny_program():
    x = SharedVar("x", 0)

    def main():
        yield x.write(1)
        yield x.read()
        yield ops.yield_point()

    return main()


class _Recorder(ExecutionObserver):
    def __init__(self, wants_mem=True):
        self.wants_mem_events = wants_mem
        self.started = 0
        self.finished = 0
        self.events = []

    def on_start(self, execution):
        self.started += 1

    def on_event(self, event):
        self.events.append(event)

    def on_finish(self, execution):
        self.finished += 1


class TestObserverLifecycle:
    def test_start_and_finish_called_once(self):
        recorder = _Recorder()
        Execution(Program(_tiny_program), observers=[recorder]).run(
            RandomScheduler()
        )
        assert recorder.started == 1
        assert recorder.finished == 1
        assert recorder.events

    def test_chain_fans_out_in_order(self):
        first, second = _Recorder(), _Recorder()
        chain = ObserverChain([first, second])
        Execution(Program(_tiny_program), observers=[chain]).run(RandomScheduler())
        assert len(first.events) == len(second.events) > 0

    def test_no_observers_no_cost_path_still_correct(self):
        result = Execution(Program(_tiny_program)).run(RandomScheduler())
        assert not result.crashes


class TestMemEventGating:
    def test_mem_events_skipped_when_no_observer_wants_them(self):
        recorder = _Recorder(wants_mem=False)
        Execution(Program(_tiny_program), observers=[recorder]).run(
            RandomScheduler()
        )
        assert not [e for e in recorder.events if isinstance(e, MemEvent)]
        # Non-mem events still flow.
        assert recorder.events

    def test_mixed_chain_delivers_mem_events(self):
        hungry, indifferent = _Recorder(wants_mem=True), _Recorder(wants_mem=False)
        Execution(
            Program(_tiny_program), observers=[hungry, indifferent]
        ).run(RandomScheduler())
        assert [e for e in hungry.events if isinstance(e, MemEvent)]


class TestEventTrace:
    def test_of_type_filters(self):
        trace = EventTrace()
        Execution(Program(_tiny_program), observers=[trace]).run(RandomScheduler())
        mems = trace.of_type(MemEvent)
        assert len(mems) == 2
        assert mems[0].is_write and not mems[1].is_write
        assert mems[0].locks_held == frozenset()

    def test_steps_strictly_increase(self):
        trace = EventTrace()
        Execution(Program(_tiny_program), observers=[trace]).run(RandomScheduler())
        steps = [event.step for event in trace.events]
        assert steps == sorted(steps)
