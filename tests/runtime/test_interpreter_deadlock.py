"""Real-deadlock detection (Algorithm 1, lines 30-32) at the engine level."""

from repro.core import DefaultScheduler, RandomScheduler
from repro.runtime import (
    DeadlockEvent,
    EventTrace,
    Execution,
    Lock,
    Program,
    join_all,
    ops,
    spawn_all,
)


def _lock_order_inversion_program():
    a, b = Lock("A"), Lock("B")

    def forward():
        yield a.acquire()
        yield ops.yield_point()
        yield b.acquire()
        yield b.release()
        yield a.release()

    def backward():
        yield b.acquire()
        yield ops.yield_point()
        yield a.acquire()
        yield a.release()
        yield b.release()

    def main():
        handles = yield from spawn_all([forward, backward])
        yield from join_all(handles)

    return main()


class TestDeadlockDetection:
    def test_lock_order_inversion_deadlocks_on_some_seeds(self):
        results = [
            Execution(Program(_lock_order_inversion_program), seed=seed).run(
                RandomScheduler()
            )
            for seed in range(30)
        ]
        deadlocked = [r for r in results if r.deadlock]
        clean = [r for r in results if not r.deadlock]
        assert deadlocked, "no seed deadlocked; inversion program is broken"
        assert clean, "every seed deadlocked; scheduler diversity is broken"

    def test_deadlocked_tids_include_main_joiner(self):
        for seed in range(30):
            result = Execution(
                Program(_lock_order_inversion_program), seed=seed
            ).run(RandomScheduler())
            if result.deadlock:
                # main (tid 0) is blocked on join, both workers on locks.
                assert set(result.deadlocked_tids) == {0, 1, 2}
                return
        raise AssertionError("expected at least one deadlock in 30 seeds")

    def test_deadlock_event_emitted(self):
        for seed in range(30):
            trace = EventTrace()
            result = Execution(
                Program(_lock_order_inversion_program), seed=seed, observers=[trace]
            ).run(RandomScheduler())
            if result.deadlock:
                events = trace.of_type(DeadlockEvent)
                assert len(events) == 1
                assert set(events[0].blocked) == set(result.deadlocked_tids)
                return
        raise AssertionError("expected at least one deadlock in 30 seeds")

    def test_waiting_forever_is_deadlock(self):
        def make():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                yield lock.wait()  # nobody will ever notify
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.join(handle)

            return main()

        result = Execution(Program(make)).run(RandomScheduler())
        assert result.deadlock
        assert set(result.deadlocked_tids) == {0, 1}

    def test_self_join_is_deadlock(self):
        def make():
            def main():
                # A thread can't join itself; tid 0 is main.
                yield ops.join(0)

            return main()

        result = Execution(Program(make)).run(DefaultScheduler())
        assert result.deadlock

    def test_clean_termination_is_not_deadlock(self):
        def make():
            def main():
                yield ops.yield_point()

            return main()

        result = Execution(Program(make)).run(RandomScheduler())
        assert not result.deadlock
        assert result.deadlocked_tids == ()
