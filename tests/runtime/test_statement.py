"""Statement identity and pair normalization."""

from repro.runtime import EventTrace, MemEvent, ops
from repro.runtime.statement import Statement, StatementPair

from tests.conftest import run_single
from repro.runtime.sugar import SharedVar


class TestStatement:
    def test_source_site_identity(self):
        a = Statement(file="f.py", line=10, func="g")
        b = Statement(file="f.py", line=10, func="h")  # func not compared
        c = Statement(file="f.py", line=11, func="g")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_label_overrides_source_identity(self):
        a = Statement(file="f.py", line=10, label="s1")
        b = Statement(file="other.py", line=99, label="s1")
        assert a == b
        assert a.site == "s1"

    def test_labelled_and_unlabelled_differ(self):
        assert Statement(file="f.py", line=10) != Statement(label="f.py:10")

    def test_site_rendering(self):
        assert Statement(file="/a/b/mod.py", line=3, func="f").site == "mod.py:3(f)"
        assert Statement(label="7").site == "7"
        assert str(Statement(label="7")) == "7"

    def test_repr(self):
        assert repr(Statement(label="x")) == "Statement('x')"


class TestStatementPair:
    def test_unordered_equality(self):
        s1, s2 = Statement(label="a"), Statement(label="b")
        assert StatementPair(s1, s2) == StatementPair(s2, s1)
        assert hash(StatementPair(s1, s2)) == hash(StatementPair(s2, s1))

    def test_contains_and_other(self):
        s1, s2 = Statement(label="a"), Statement(label="b")
        pair = StatementPair(s1, s2)
        assert s1 in pair and s2 in pair
        assert Statement(label="c") not in pair
        assert pair.other(s1) == s2
        assert pair.other(s2) == s1

    def test_other_rejects_nonmember(self):
        pair = StatementPair(Statement(label="a"), Statement(label="b"))
        import pytest

        with pytest.raises(ValueError):
            pair.other(Statement(label="zzz"))

    def test_self_pair(self):
        s = Statement(label="a")
        pair = StatementPair(s, s)
        assert pair.first == pair.second == s
        assert pair.other(s) == s

    def test_str(self):
        pair = StatementPair(Statement(label="b"), Statement(label="a"))
        assert str(pair) == "(a, b)"  # normalized order


class TestStatementDerivation:
    def test_mem_events_carry_yield_site(self):
        trace = EventTrace()
        x = {}

        def body():
            x["var"] = SharedVar("x", 0)
            yield x["var"].write(1)  # line A
            yield x["var"].read()  # line B

        run_single(body, observers=[trace])
        events = trace.of_type(MemEvent)
        assert len(events) == 2
        write_stmt, read_stmt = events[0].stmt, events[1].stmt
        assert write_stmt != read_stmt
        assert write_stmt.file.endswith("test_statement.py")
        assert read_stmt.line == write_stmt.line + 1

    def test_yield_from_attributes_to_innermost_frame(self):
        trace = EventTrace()

        def helper(var):
            yield var.write(41)  # the innermost yield

        def body():
            var = SharedVar("y", 0)
            yield from helper(var)

        run_single(body, observers=[trace])
        (event,) = trace.of_type(MemEvent)
        assert event.stmt.func.endswith("helper")

    def test_label_wins_over_site(self):
        trace = EventTrace()

        def body():
            var = SharedVar("z", 0)
            yield var.write(1, label="L1")

        run_single(body, observers=[trace])
        (event,) = trace.of_type(MemEvent)
        assert event.stmt == Statement(label="L1")

    def test_same_line_in_loop_is_one_statement(self):
        trace = EventTrace()

        def body():
            var = SharedVar("w", 0)
            for i in range(3):
                yield var.write(i)

        run_single(body, observers=[trace])
        stmts = {event.stmt for event in trace.of_type(MemEvent)}
        assert len(stmts) == 1
