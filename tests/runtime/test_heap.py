"""Heap semantics: lazy defaults, snapshots."""

from repro.runtime.heap import Heap
from repro.runtime.location import VarLoc, fresh_uid


class TestHeap:
    def test_read_unwritten_returns_default(self):
        heap = Heap()
        loc = VarLoc(fresh_uid(), "x")
        assert heap.read(loc, default=5) == 5
        assert heap.read(loc) is None
        assert not heap.written(loc)

    def test_write_then_read(self):
        heap = Heap()
        loc = VarLoc(fresh_uid(), "x")
        heap.write(loc, 10)
        assert heap.read(loc, default=5) == 10
        assert heap.written(loc)

    def test_write_none_shadows_default(self):
        heap = Heap()
        loc = VarLoc(fresh_uid(), "x")
        heap.write(loc, None)
        assert heap.read(loc, default=5) is None

    def test_distinct_locations_independent(self):
        heap = Heap()
        a, b = VarLoc(fresh_uid(), "a"), VarLoc(fresh_uid(), "b")
        heap.write(a, 1)
        assert heap.read(b, default=0) == 0

    def test_snapshot_and_len_and_iter(self):
        heap = Heap()
        a, b = VarLoc(fresh_uid(), "a"), VarLoc(fresh_uid(), "b")
        heap.write(a, 1)
        heap.write(b, 2)
        snap = heap.snapshot()
        assert snap == {a: 1, b: 2}
        assert len(heap) == 2
        assert set(heap) == {a, b}
        # snapshot is a copy
        snap[a] = 99
        assert heap.read(a) == 1
