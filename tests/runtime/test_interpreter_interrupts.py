"""Interrupt semantics: wait/sleep interruption, flag polling, Java fidelity."""

from repro.runtime import (
    InterruptedException,
    Lock,
    SharedVar,
    ops,
)

from tests.conftest import run_program


class TestInterruptWaiting:
    def test_interrupt_waiting_thread_raises_inside_it(self, rng_seeds):
        outcomes = []

        def make():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                try:
                    yield lock.wait()
                    outcomes.append("woke")
                except InterruptedException:
                    outcomes.append("interrupted")
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.yield_point()
                yield ops.yield_point()
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        for seed in rng_seeds:
            outcomes.clear()
            result = run_program(make, seed=seed)
            assert not result.deadlock, f"seed {seed}"
            assert outcomes == ["interrupted"], f"seed {seed}: {outcomes}"

    def test_interrupted_waiter_reacquires_lock_before_throwing(self):
        """Java: the InterruptedException is delivered with the monitor held."""

        def make():
            lock = Lock("L")
            witness = SharedVar("witness", 0)

            def waiter():
                yield lock.acquire()
                try:
                    yield lock.wait()
                except InterruptedException:
                    # We must own the monitor here: this write is protected.
                    yield witness.write(1)
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.yield_point()
                yield ops.yield_point()
                yield ops.interrupt(handle)
                yield ops.join(handle)
                value = yield witness.read()
                yield ops.check(value == 1, "waiter never saw the interrupt")

            return main()

        for seed in range(10):
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_uncaught_interrupt_kills_the_thread(self):
        def make():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                yield lock.wait()  # no try/except: crash on interrupt
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.yield_point()
                yield ops.yield_point()
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        result = run_program(make, seed=1)
        assert result.exception_types == ["InterruptedException"]
        assert not result.deadlock


class TestInterruptSleeping:
    def test_interrupt_wakes_sleeper_early(self):
        def make():
            def sleeper():
                try:
                    yield ops.sleep(10_000)
                except InterruptedException:
                    pass

            def main():
                handle = yield ops.spawn(sleeper)
                yield ops.yield_point()
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        result = run_program(make, max_steps=5_000)
        assert not result.truncated  # woke long before 10k ticks
        assert not result.crashes and not result.deadlock


class TestInterruptFlag:
    def test_interrupt_runnable_thread_sets_flag(self):
        observed = {}

        def make():
            def worker():
                yield ops.yield_point()
                yield ops.yield_point()
                yield ops.yield_point()
                observed["first"] = yield ops.interrupted()
                observed["second"] = yield ops.interrupted()  # poll clears

            def main():
                handle = yield ops.spawn(worker)
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        result = run_program(make, seed=3)
        assert not result.crashes
        assert observed == {"first": True, "second": False}

    def test_wait_with_pending_flag_throws_immediately(self):
        outcomes = []

        def make():
            lock = Lock("L")

            def worker():
                yield ops.yield_point()
                yield ops.yield_point()
                yield lock.acquire()
                try:
                    yield lock.wait()
                except InterruptedException:
                    outcomes.append("immediate")
                yield lock.release()

            def main():
                handle = yield ops.spawn(worker)
                yield ops.interrupt(handle)  # lands while runnable
                yield ops.join(handle)

            return main()

        result = run_program(make, seed=0)
        assert not result.deadlock
        assert outcomes == ["immediate"]

    def test_sleep_with_pending_flag_throws_immediately(self):
        outcomes = []

        def make():
            def worker():
                yield ops.yield_point()
                yield ops.yield_point()
                try:
                    yield ops.sleep(100)
                except InterruptedException:
                    outcomes.append("immediate")

            def main():
                handle = yield ops.spawn(worker)
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        result = run_program(make, seed=0, max_steps=1_000)
        assert outcomes == ["immediate"]
        assert not result.truncated

    def test_interrupt_dead_thread_is_noop(self):
        def make():
            def quick():
                yield ops.yield_point()

            def main():
                handle = yield ops.spawn(quick)
                yield ops.join(handle)
                yield ops.interrupt(handle)  # already dead

            return main()

        result = run_program(make)
        assert not result.crashes and not result.deadlock
