"""Operation descriptor construction and classification."""

import pytest

from repro.runtime import ops
from repro.runtime.location import LockId, VarLoc, fresh_uid
from repro.runtime.ops import MEM_KINDS, SYNC_KINDS, Op, OpKind


@pytest.fixture
def loc():
    return VarLoc(fresh_uid(), "x")


@pytest.fixture
def lock_id():
    return LockId(fresh_uid(), "L")


class TestConstructors:
    def test_read(self, loc):
        op = ops.read(loc, default=42)
        assert op.kind is OpKind.READ
        assert op.location == loc
        assert op.default == 42
        assert op.is_mem and not op.is_write and not op.is_sync

    def test_write(self, loc):
        op = ops.write(loc, "v")
        assert op.kind is OpKind.WRITE
        assert op.value == "v"
        assert op.is_mem and op.is_write

    def test_lock_unlock(self, lock_id):
        assert ops.lock(lock_id).kind is OpKind.LOCK
        assert ops.unlock(lock_id).kind is OpKind.UNLOCK
        assert ops.lock(lock_id).is_sync
        assert not ops.lock(lock_id).is_mem

    def test_wait_notify(self, lock_id):
        assert ops.wait(lock_id).kind is OpKind.WAIT
        assert ops.notify(lock_id).kind is OpKind.NOTIFY
        assert ops.notify_all(lock_id).kind is OpKind.NOTIFY_ALL

    def test_spawn_carries_function_and_args(self):
        def body(a, b):
            yield ops.yield_point()

        op = ops.spawn(body, 1, 2, name="worker")
        assert op.kind is OpKind.SPAWN
        assert op.func is body
        assert op.args == (1, 2)
        assert op.name == "worker"

    def test_join_interrupt_targets(self):
        assert ops.join(3).target == 3
        assert ops.interrupt(5).target == 5

    def test_sleep_duration(self):
        assert ops.sleep(7).duration == 7

    def test_check(self):
        op = ops.check(False, "boom")
        assert op.kind is OpKind.CHECK
        assert op.condition is False
        assert op.message == "boom"

    def test_yield_point_and_interrupted(self):
        assert ops.yield_point().kind is OpKind.YIELD
        assert ops.interrupted().kind is OpKind.INTERRUPTED

    def test_label_passthrough(self, loc):
        assert ops.read(loc, label="7").label == "7"
        assert ops.write(loc, 1, label="8").label == "8"


class TestClassification:
    def test_mem_and_sync_kinds_are_disjoint(self):
        assert not (MEM_KINDS & SYNC_KINDS)

    def test_every_kind_classified(self):
        # CHECK and INTERRUPTED are neither mem nor sync (local effects).
        unclassified = set(OpKind) - MEM_KINDS - SYNC_KINDS
        assert unclassified == {OpKind.CHECK, OpKind.INTERRUPTED}

    def test_reacquire_is_sync(self):
        assert Op(OpKind.REACQUIRE).is_sync


class TestDescribe:
    def test_describe_variants(self, loc, lock_id):
        assert "read" in ops.read(loc).describe()
        assert "x" in ops.read(loc).describe()
        assert "L" in ops.lock(lock_id).describe()
        assert "sleep 3" == ops.sleep(3).describe()
        assert "join" in ops.join(1).describe()
        assert "check" in ops.check(True, "msg").describe()

        def body():
            yield ops.yield_point()

        assert "spawn" in ops.spawn(body).describe()
