"""LockTable unit tests: reentrancy, wait sets, misuse errors."""

import pytest

from repro.runtime.errors import IllegalMonitorState
from repro.runtime.location import LockId, fresh_uid
from repro.runtime.locks import LockTable


@pytest.fixture
def lock_id():
    return LockId(fresh_uid(), "L")


@pytest.fixture
def table():
    return LockTable()


class TestAcquireRelease:
    def test_acquire_free_lock_is_outermost(self, table, lock_id):
        assert table.can_acquire(lock_id, 1)
        assert table.acquire(lock_id, 1) is True
        assert table.holds(lock_id, 1)
        assert table.held_by(1) == {lock_id}

    def test_reentrant_acquire(self, table, lock_id):
        table.acquire(lock_id, 1)
        assert table.can_acquire(lock_id, 1)
        assert table.acquire(lock_id, 1) is False  # inner, not outermost
        assert table.release(lock_id, 1) is False  # still held
        assert table.release(lock_id, 1) is True  # fully released
        assert not table.holds(lock_id, 1)
        assert table.held_by(1) == frozenset()

    def test_contention_blocks_other_thread(self, table, lock_id):
        table.acquire(lock_id, 1)
        assert not table.can_acquire(lock_id, 2)
        with pytest.raises(IllegalMonitorState):
            table.acquire(lock_id, 2)

    def test_release_unheld_raises(self, table, lock_id):
        with pytest.raises(IllegalMonitorState):
            table.release(lock_id, 1)
        table.acquire(lock_id, 1)
        with pytest.raises(IllegalMonitorState):
            table.release(lock_id, 2)

    def test_held_by_multiple_locks(self, table):
        a, b = LockId(fresh_uid(), "a"), LockId(fresh_uid(), "b")
        table.acquire(a, 1)
        table.acquire(b, 1)
        assert table.held_by(1) == {a, b}
        table.release(a, 1)
        assert table.held_by(1) == {b}


class TestWaitSets:
    def test_release_all_returns_depth(self, table, lock_id):
        table.acquire(lock_id, 1)
        table.acquire(lock_id, 1)
        assert table.release_all(lock_id, 1) == 2
        assert not table.holds(lock_id, 1)

    def test_release_all_requires_ownership(self, table, lock_id):
        with pytest.raises(IllegalMonitorState):
            table.release_all(lock_id, 1)

    def test_park_and_unpark_one(self, table, lock_id):
        table.park_waiter(lock_id, 1)
        table.park_waiter(lock_id, 2)
        assert table.unpark_one(lock_id, 0) == 1
        assert table.unpark_one(lock_id, 0) == 2
        assert table.unpark_one(lock_id, 0) is None

    def test_unpark_one_index_wraps(self, table, lock_id):
        table.park_waiter(lock_id, 1)
        table.park_waiter(lock_id, 2)
        assert table.unpark_one(lock_id, 5) == 2  # 5 % 2 == 1

    def test_unpark_all(self, table, lock_id):
        for tid in (1, 2, 3):
            table.park_waiter(lock_id, tid)
        assert table.unpark_all(lock_id) == [1, 2, 3]
        assert table.unpark_all(lock_id) == []

    def test_remove_waiter(self, table, lock_id):
        table.park_waiter(lock_id, 1)
        assert table.remove_waiter(lock_id, 1) is True
        assert table.remove_waiter(lock_id, 1) is False

    def test_reacquire_with_depth(self, table, lock_id):
        table.acquire(lock_id, 1, depth=3)
        assert table.release(lock_id, 1) is False
        assert table.release(lock_id, 1) is False
        assert table.release(lock_id, 1) is True
