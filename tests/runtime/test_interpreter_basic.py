"""Core engine behaviour: stepping, spawn/join, crash domains, results."""

import pytest

from repro.core import RandomScheduler
from repro.runtime import (
    EngineError,
    EventTrace,
    Execution,
    Program,
    RcvEvent,
    SchedulerMisuse,
    SharedVar,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
    join_all,
    ops,
    spawn_all,
)
from repro.runtime.errors import AssertionViolation, SimulatedError

from tests.conftest import run_program, run_single


class TestBasicStepping:
    def test_single_thread_runs_to_completion(self):
        log = []

        def body():
            log.append("start")
            yield ops.yield_point()
            log.append("end")

        result = run_single(body)
        assert log == ["start", "end"]
        assert result.steps >= 1

    def test_read_sends_value_back(self):
        seen = {}

        def body():
            x = SharedVar("x", init=7)
            seen["initial"] = yield x.read()
            yield x.write(13)
            seen["after"] = yield x.read()

        run_single(body)
        assert seen == {"initial": 7, "after": 13}

    def test_step_requires_enabled_thread(self):
        def make():
            def main():
                yield ops.yield_point()

            return main()

        execution = Execution(Program(make))
        execution.start()
        with pytest.raises(SchedulerMisuse):
            execution.step(99)  # unknown thread

    def test_yielding_non_op_is_engine_error(self):
        def make():
            def main():
                yield "not an op"

            return main()

        execution = Execution(Program(make))
        with pytest.raises(EngineError):
            execution.run(RandomScheduler())

    def test_cannot_start_twice(self):
        def make():
            def main():
                yield ops.yield_point()

            return main()

        execution = Execution(Program(make))
        execution.start()
        with pytest.raises(SchedulerMisuse):
            execution.start()


class TestSpawnJoin:
    def test_spawn_returns_handle_and_runs_child(self):
        log = []

        def child(value):
            log.append(value)
            yield ops.yield_point()

        def body():
            handle = yield ops.spawn(child, 42, name="kid")
            assert handle.name == "kid"
            yield ops.join(handle)

        run_single(body)
        assert log == [42]

    def test_join_blocks_until_child_done(self):
        order = []

        def make():
            flag = SharedVar("flag", 0)

            def child():
                yield ops.yield_point()
                order.append("child-done")
                yield flag.write(1)

            def main():
                handle = yield ops.spawn(child)
                yield ops.join(handle)
                order.append("after-join")
                value = yield flag.read()
                assert value == 1

            return main()

        for seed in range(10):
            order.clear()
            result = run_program(make, seed=seed)
            assert not result.crashes
            assert order == ["child-done", "after-join"]

    def test_join_on_dead_thread_is_immediate(self):
        def make():
            def empty():
                if False:
                    yield

            def main():
                handle = yield ops.spawn(empty)
                yield ops.yield_point()
                yield ops.join(handle)
                yield ops.join(handle)

            return main()

        result = run_program(make)
        assert not result.crashes and not result.deadlock

    def test_spawn_join_events(self):
        trace = EventTrace()

        def make():
            def child():
                yield ops.yield_point()

            def main():
                handle = yield ops.spawn(child)
                yield ops.join(handle)

            return main()

        run_program(make, observers=[trace])
        starts = trace.of_type(ThreadStartEvent)
        assert [e.child for e in starts] == [0, 1]
        # SND/RCV: spawn edge + termination/join edges (child + main term).
        snds = trace.of_type(SndEvent)
        rcvs = trace.of_type(RcvEvent)
        assert len(snds) == 3  # spawn, child term, main term
        assert len(rcvs) == 2  # child spawn rcv, main join rcv
        ends = trace.of_type(ThreadEndEvent)
        assert {e.tid for e in ends} == {0, 1}

    def test_spawn_all_and_join_all(self):
        counter = SharedVar("n", 0)

        def make():
            total = SharedVar("total", 0)

            def worker(k):
                value = yield total.read()
                yield total.write(value + k)

            def main():
                handles = yield from spawn_all(
                    [(lambda k: lambda: worker(k))(k) for k in range(4)]
                )
                assert [h.tid for h in handles] == [1, 2, 3, 4]
                yield from join_all(handles)

            return main()

        result = run_program(make)
        assert not result.crashes


class TestCrashDomains:
    def test_uncaught_exception_kills_only_its_thread(self):
        def make():
            x = SharedVar("x", 0)

            def bad():
                yield ops.yield_point()
                raise SimulatedError("boom")

            def good():
                yield x.write(1)

            def main():
                handles = yield from spawn_all([bad, good])
                yield from join_all(handles)
                value = yield x.read()
                assert value == 1

            return main()

        result = run_program(make)
        assert result.exception_types == ["SimulatedError"]
        assert not result.deadlock
        crash = result.crashes[0]
        assert crash.name.startswith("worker")
        assert "boom" in str(crash)

    def test_check_failure_raises_assertion_violation(self):
        def make():
            def main():
                yield ops.check(1 + 1 == 3, "math broke")

            return main()

        result = run_program(make)
        assert result.exception_types == ["AssertionViolation"]

    def test_check_success_continues(self):
        def body():
            yield ops.check(True, "fine")
            yield ops.yield_point()

        run_single(body)

    def test_check_failure_is_catchable(self):
        caught = []

        def body():
            try:
                yield ops.check(False, "caught me")
            except AssertionViolation as err:
                caught.append(str(err))
            yield ops.yield_point()

        run_single(body)
        assert caught == ["caught me"]

    def test_crash_records_statement_and_step(self):
        def make():
            x = SharedVar("x", 0)

            def main():
                yield x.write(1, label="last-op")
                raise SimulatedError("died")

            return main()

        result = run_program(make)
        crash = result.crashes[0]
        assert crash.stmt is not None
        assert crash.step > 0


class TestResults:
    def test_result_fields(self):
        def make():
            def main():
                yield ops.yield_point()
                yield ops.yield_point()

            return main()

        result = run_program(make, seed=5)
        assert result.seed == 5
        assert result.steps >= 2
        assert result.wall_time > 0
        assert not result.truncated
        assert "seed=5" in str(result)

    def test_max_steps_truncation(self):
        def make():
            x = SharedVar("x", 0)

            def main():
                while True:
                    yield x.read()

            return main()

        execution = Execution(Program(make), max_steps=50)
        result = execution.run(RandomScheduler())
        assert result.truncated
        assert not result.deadlock  # truncation is not deadlock
        assert "TRUNCATED" in str(result)
