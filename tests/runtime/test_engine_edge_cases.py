"""Engine edge cases: priming crashes, notify contention, odd spawns."""

import pytest

from repro.core import RandomScheduler
from repro.runtime import (
    EngineError,
    Execution,
    Lock,
    Program,
    SharedVar,
    ops,
)
from repro.runtime.errors import SimulatedError

from tests.conftest import run_program


class TestPrimingEdges:
    def test_thread_crashing_before_first_yield(self):
        """The crash happens during spawn (priming); it must land in the
        CHILD's crash record, and the spawner must continue."""

        def make():
            def instant_crash():
                raise SimulatedError("died at birth")
                yield  # pragma: no cover

            def main():
                handle = yield ops.spawn(instant_crash, name="doomed")
                yield ops.join(handle)  # already dead: immediate
                yield ops.yield_point()

            return main()

        result = run_program(make)
        assert result.exception_types == ["SimulatedError"]
        assert result.crashes[0].name == "doomed"
        assert not result.deadlock

    def test_thread_with_no_yields_terminates_at_spawn(self):
        def make():
            log = []

            def eager():
                log.append("ran")
                if False:
                    yield

            def main():
                handle = yield ops.spawn(eager)
                yield ops.join(handle)
                yield ops.check(log == ["ran"], "eager body skipped")

            return main()

        result = run_program(make)
        assert not result.crashes

    def test_spawn_of_non_generator_function_is_engine_error(self):
        def make():
            def not_a_generator():
                return 42

            def main():
                yield ops.spawn(not_a_generator)

            return main()

        with pytest.raises(EngineError):
            run_program(make)

    def test_main_program_crashing_at_priming(self):
        def make():
            def main():
                raise SimulatedError("before any op")
                yield  # pragma: no cover

            return main()

        result = run_program(make)
        assert result.exception_types == ["SimulatedError"]


class TestNotifyContention:
    def test_notified_waiter_cannot_return_while_notifier_holds_lock(self):
        """Two-stage wakeup: between notify and the notifier's release, the
        woken waiter is pending REACQUIRE and disabled."""
        order = []

        def make():
            lock = Lock("L")
            flag = SharedVar("flag", 0)

            def waiter():
                yield lock.acquire()
                while (yield flag.read()) == 0:
                    yield lock.wait()
                order.append("waiter-returned")
                yield lock.release()

            def notifier():
                yield ops.sleep(10)  # let the waiter park first
                yield lock.acquire()
                yield flag.write(1)
                yield lock.notify()
                order.append("notified")
                yield ops.yield_point()
                yield ops.yield_point()
                order.append("releasing")
                yield lock.release()

            def main():
                first = yield ops.spawn(waiter)
                second = yield ops.spawn(notifier)
                yield ops.join(first)
                yield ops.join(second)

            return main()

        for seed in range(10):
            order.clear()
            result = run_program(make, seed=seed)
            assert not result.deadlock, f"seed {seed}"
            assert order.index("releasing") < order.index("waiter-returned"), (
                f"seed {seed}: {order}"
            )

    def test_notify_choice_is_seed_deterministic(self):
        """With three waiters and one notify, which one wakes is drawn from
        the execution RNG — replay must agree with itself."""

        def make():
            lock = Lock("L")
            go = SharedVar("go", 0)
            woken = SharedVar("woken", None)

            def waiter(k):
                yield lock.acquire()
                while (yield go.read()) == 0:
                    yield lock.wait()
                first = yield woken.read()
                if first is None:
                    yield woken.write(k)  # only the first woken records
                yield lock.release()

            def main():
                handles = []
                for k in range(3):
                    handle = yield ops.spawn((lambda kk: lambda: waiter(kk))(k))
                    handles.append(handle)
                yield ops.sleep(20)
                yield lock.acquire()
                yield go.write(1)
                yield lock.notify()
                yield lock.release()
                yield ops.sleep(50)
                yield lock.acquire()
                yield lock.notify_all()  # free the rest (go==0: they exit)
                yield lock.release()
                for handle in handles:
                    yield ops.join(handle)

            return main()

        def winner(seed):
            execution = Execution(Program(make), seed=seed, max_steps=100_000)
            result = execution.run(RandomScheduler())
            assert not result.deadlock
            # Location uids are per-run; compare by display name.
            return sorted(
                (loc.describe(), value)
                for loc, value in execution.heap.snapshot().items()
            )

        for seed in range(5):
            assert winner(seed) == winner(seed)


class TestSpawnShapes:
    def test_spawn_generator_object_directly(self):
        """ops.spawn takes a function; passing a prebuilt generator works
        via a lambda shim (the engine calls func())."""

        def make():
            x = SharedVar("x", 0)

            def body(k):
                yield x.write(k)

            def main():
                handle = yield ops.spawn(lambda: body(5))
                yield ops.join(handle)
                value = yield x.read()
                yield ops.check(value == 5, "wrong value")

            return main()

        assert not run_program(make).crashes

    def test_deeply_nested_yield_from(self):
        def make():
            x = SharedVar("x", 0)

            def level3():
                yield x.write(3)

            def level2():
                yield from level3()

            def level1():
                yield from level2()

            def main():
                yield from level1()
                value = yield x.read()
                yield ops.check(value == 3, "nesting broke")

            return main()

        assert not run_program(make).crashes
