"""Program factory validation and thread-reference resolution."""

import pytest

from repro.runtime import EngineError, Program, ThreadHandle, program, resolve_tid
from repro.runtime import ops


class TestProgram:
    def test_factory_must_be_callable(self):
        with pytest.raises(EngineError):
            Program("not callable")

    def test_factory_must_return_generator(self):
        def bad_factory():
            return 42

        prog = Program(bad_factory)
        with pytest.raises(EngineError):
            prog.instantiate()

    def test_name_defaults_to_factory_name(self):
        def my_factory():
            def main():
                yield ops.yield_point()

            return main()

        assert Program(my_factory).name == "my_factory"
        assert Program(my_factory, name="explicit").name == "explicit"
        assert "my_factory" in repr(Program(my_factory))

    def test_decorator_form(self):
        @program
        def demo():
            def main():
                yield ops.yield_point()

            return demo_main()

        assert isinstance(demo, Program)
        assert demo.name == "demo"

    def test_each_instantiation_is_fresh(self):
        def factory():
            def main():
                yield ops.yield_point()

            return main()

        prog = Program(factory)
        assert prog.instantiate() is not prog.instantiate()


def demo_main():
    yield ops.yield_point()


class TestResolveTid:
    def test_accepts_int(self):
        assert resolve_tid(3) == 3

    def test_accepts_handle(self):
        assert resolve_tid(ThreadHandle(7, "w")) == 7

    def test_rejects_garbage(self):
        with pytest.raises(EngineError):
            resolve_tid("thread-1")
        with pytest.raises(EngineError):
            resolve_tid(None)
