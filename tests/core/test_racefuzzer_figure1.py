"""Experiment E6: RaceFuzzer on the paper's Figure 1, claim by claim."""

import pytest

from repro.core import RaceFuzzer, detect_races, fuzz_pair, race_directed_test
from repro.runtime.statement import Statement, StatementPair
from repro.workloads import figure1

TRIALS = 60


@pytest.fixture(scope="module")
def campaign():
    return race_directed_test(figure1.build(), trials=TRIALS, phase1_seeds=range(5))


class TestPhase1:
    def test_hybrid_reports_exactly_the_papers_two_pairs(self):
        report = detect_races(figure1.build(), seeds=range(5))
        assert set(report.pairs) == {figure1.REAL_PAIR, figure1.FALSE_PAIR}


class TestClassification:
    def test_real_pair_created_with_probability_one(self, campaign):
        verdict = campaign.verdicts[figure1.REAL_PAIR]
        assert verdict.is_real
        assert verdict.probability == 1.0  # Section 3.1: probability 1

    def test_false_pair_never_created(self, campaign):
        verdict = campaign.verdicts[figure1.FALSE_PAIR]
        assert not verdict.is_real
        assert verdict.probability == 0.0
        assert not verdict.is_harmful

    def test_error1_reached_in_about_half_the_runs(self, campaign):
        verdict = campaign.verdicts[figure1.REAL_PAIR]
        errors = verdict.exceptions.get("AssertionViolation", 0)
        # Coin-flip resolution: expect ~TRIALS/2; allow wide noise margin.
        assert TRIALS * 0.25 <= errors <= TRIALS * 0.75

    def test_error2_is_unreachable(self, campaign):
        for verdict in campaign.verdicts.values():
            for crash_type in verdict.exceptions:
                assert crash_type == "AssertionViolation"
        # And no AssertionViolation ever comes from ERROR2's pair.
        assert not campaign.verdicts[figure1.FALSE_PAIR].exceptions

    def test_summary_counts_match_paper(self, campaign):
        assert campaign.potential_pairs == 2
        assert campaign.real_pairs == [figure1.REAL_PAIR]
        assert campaign.harmful_pairs == [figure1.REAL_PAIR]


class TestNoFalseWarnings:
    def test_every_reported_race_was_actually_created(self, campaign):
        """'No false warnings' (Section 1): a pair is reported real only if
        two threads were brought to adjacent conflicting accesses."""
        for verdict in campaign.verdicts.values():
            if verdict.is_real:
                assert verdict.created_pairs
                assert verdict.times_created > 0


class TestRaceSetForms:
    def test_fuzzer_accepts_statement_pair_or_set(self):
        by_pair = RaceFuzzer(figure1.REAL_PAIR)
        by_set = RaceFuzzer({Statement(label="5"), Statement(label="7")})
        assert by_pair.race_set == by_set.race_set

    def test_empty_race_set_rejected(self):
        with pytest.raises(ValueError):
            RaceFuzzer(set())

    def test_fuzz_pair_runs_once_per_seed(self):
        outcomes = fuzz_pair(figure1.build(), figure1.REAL_PAIR, seeds=range(7))
        assert len(outcomes) == 7
        assert all(outcome.created for outcome in outcomes)


class TestHitMetadata:
    def test_hit_records_location_and_threads(self):
        fuzzer = RaceFuzzer(figure1.REAL_PAIR)
        outcome = fuzzer.run(figure1.build(), seed=0)
        assert outcome.created
        hit = outcome.hits[0]
        assert hit.location_name == "z"
        assert hit.pair == figure1.REAL_PAIR
        assert len(set(hit.tids)) == 2
