"""Campaign scheduling policies: fixed equivalence, adaptive determinism.

The contract under test (ISSUE 8): ``FixedSchedule`` is byte-identical to
the pre-policy drivers for every workload, serial and parallel, so
Table 1 reproduction is untouched; ``AdaptiveSchedule`` reaches the same
confirmed races with fewer trials, deterministically per seed — same
allocation sequence and verdicts serial vs ``jobs=4``, and a mid-campaign
checkpoint/resume replays to the identical final report.
"""

import json

import pytest

from repro.core import (
    AdaptiveSchedule,
    FixedSchedule,
    fuzz_races,
    make_schedule,
)
from repro.core.parallel import chunk_ranges
from repro.core.schedule import beta_upper_bound, chunk_spans
from repro.workloads import figure1

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]


def _verdict_signature(verdict):
    """Everything deterministic in a verdict (wall-clock is measured)."""
    return (
        verdict.trials,
        verdict.times_created,
        dict(verdict.exceptions),
        dict(verdict.unattributed_exceptions),
        verdict.deadlocks,
        verdict.truncated,
        verdict.created_pairs,
    )


def _campaign_signature(verdicts):
    return {str(pair): _verdict_signature(v) for pair, v in verdicts.items()}


def _adaptive(**overrides):
    """An adaptive schedule tuned small enough for fast unit campaigns."""
    params = dict(seed=0, round_width=4, min_trials=10, stop_threshold=0.2)
    params.update(overrides)
    return AdaptiveSchedule(**params)


class TestChunkSpans:
    def test_cover_exactly_once_from_any_cursor(self):
        spans = chunk_spans(start=42, count=23, chunk_size=5)
        seeds = [s for start, count in spans for s in range(start, start + count)]
        assert seeds == list(range(42, 65))

    def test_chunk_ranges_is_the_same_math(self):
        assert chunk_ranges(7, 23, 5) == chunk_spans(7, 23, 5)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_spans(0, 10, 0)


class TestBetaBounds:
    def test_upper_bound_shrinks_with_evidence(self):
        few = beta_upper_bound(1.0, 11.0)
        many = beta_upper_bound(1.0, 101.0)
        assert many < few < 1.0

    def test_upper_bound_clamped_to_one(self):
        assert beta_upper_bound(50.0, 1.0) == 1.0


class TestFixedSchedule:
    def test_single_batch_matches_legacy_task_layout(self):
        sched = FixedSchedule(trials=23)
        sched.bind(PAIRS, base_seed=7, chunk_size=5)
        batch = sched.next_batch()
        # Pair-major, each pair's chunks exactly chunk_ranges of its range.
        expected = [
            (index, start, count)
            for index in range(len(PAIRS))
            for start, count in chunk_ranges(7, 23, 5)
        ]
        assert [(c.pair_index, c.seed_start, c.count) for c in batch] == expected
        assert sched.next_batch() == []
        assert sched.trials_allocated == 23 * len(PAIRS)

    def test_planned_trials_drain_after_the_batch(self):
        sched = FixedSchedule(trials=10)
        sched.bind(PAIRS, chunk_size=25)
        assert sched.planned_trials() == 20
        sched.next_batch()
        assert sched.planned_trials() == 0

    def test_schedule_fixed_identical_to_default_serial(self):
        legacy = fuzz_races(figure1.build(), PAIRS, trials=8)
        pinned = fuzz_races(figure1.build(), PAIRS, trials=8, schedule="fixed")
        assert _campaign_signature(legacy) == _campaign_signature(pinned)

    def test_schedule_fixed_identical_to_default_parallel(self):
        legacy = fuzz_races(
            figure1.build(), PAIRS, trials=8, jobs=4, chunk_size=3
        )
        pinned = fuzz_races(
            figure1.build(), PAIRS, trials=8, jobs=4, chunk_size=3,
            schedule="fixed",
        )
        assert _campaign_signature(legacy) == _campaign_signature(pinned)


class TestMakeSchedule:
    def test_none_and_fixed_are_the_paper_protocol(self):
        for spec in (None, "fixed"):
            sched = make_schedule(spec, trials=7)
            assert isinstance(sched, FixedSchedule)
            assert sched.trials == 7

    def test_instance_passes_through(self):
        sched = _adaptive()
        assert make_schedule(sched) is sched

    def test_adaptive_budget_defaults_to_trials_per_pair(self):
        sched = make_schedule("adaptive", trials=30)
        sched.bind(PAIRS, chunk_size=5)
        assert sched.trial_budget == 30 * len(PAIRS)

    def test_explicit_budget_wins(self):
        sched = make_schedule("adaptive", trials=30, trial_budget=11)
        sched.bind(PAIRS, chunk_size=5)
        assert sched.trial_budget == 11

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            make_schedule("greedy")


class TestAdaptiveAllocation:
    def test_confirmed_pairs_stop_receiving_trials(self):
        sched = _adaptive()
        verdicts = fuzz_races(
            figure1.build(), PAIRS, chunk_size=5, schedule=sched
        )
        # REAL_PAIR creates the race with probability 1.0: one chunk
        # confirms it and the policy never buys it more evidence.
        assert verdicts[figure1.REAL_PAIR].trials == 5
        assert verdicts[figure1.REAL_PAIR].times_created == 5
        assert sched.confirmed == 1

    def test_hopeless_pair_early_stopped(self):
        sched = _adaptive()
        verdicts = fuzz_races(
            figure1.build(), [figure1.FALSE_PAIR], chunk_size=5,
            schedule=sched,
        )
        assert verdicts[figure1.FALSE_PAIR].times_created == 0
        assert sched.early_stopped == 1
        # Stopped once the posterior upper bound sank, not at a budget.
        assert verdicts[figure1.FALSE_PAIR].trials < 100

    def test_fewer_total_trials_than_fixed_same_confirmations(self):
        trials = 50
        fixed = fuzz_races(figure1.build(), PAIRS, trials=trials)
        adaptive = fuzz_races(
            figure1.build(), PAIRS, trials=trials, schedule="adaptive"
        )
        confirmed = lambda vs: {str(p) for p, v in vs.items() if v.times_created}
        assert confirmed(adaptive) == confirmed(fixed)
        assert sum(v.trials for v in adaptive.values()) < sum(
            v.trials for v in fixed.values()
        )

    def test_trial_budget_is_a_hard_ceiling(self):
        sched = _adaptive(trial_budget=12, stop_threshold=0.01)
        verdicts = fuzz_races(
            figure1.build(), [figure1.FALSE_PAIR], chunk_size=5,
            schedule=sched,
        )
        assert verdicts[figure1.FALSE_PAIR].trials <= 12
        assert sched.trials_allocated <= 12
        assert sched.budget_exhausted

    def test_time_budget_stops_scheduling(self):
        # Not a determinism property (wall-clock), just the stop switch.
        sched = _adaptive(time_budget_s=1e-9, stop_threshold=0.01)
        verdicts = fuzz_races(
            figure1.build(), [figure1.FALSE_PAIR], chunk_size=5,
            schedule=sched,
        )
        # The first next_batch arms the clock; the second observes it
        # expired — at most one round of chunks ever ran.
        assert verdicts[figure1.FALSE_PAIR].trials <= 5
        assert sched.time_exhausted


class TestAdaptiveDeterminism:
    def test_serial_vs_jobs4_identical_allocations_and_verdicts(self):
        serial_sched = _adaptive()
        parallel_sched = _adaptive()
        serial = fuzz_races(
            figure1.build(), PAIRS, chunk_size=5, schedule=serial_sched
        )
        parallel = fuzz_races(
            figure1.build(), PAIRS, chunk_size=5, jobs=4,
            schedule=parallel_sched,
        )
        assert serial_sched.allocation_log == parallel_sched.allocation_log
        assert _campaign_signature(serial) == _campaign_signature(parallel)

    def test_same_seed_same_campaign(self):
        one = fuzz_races(
            figure1.build(), PAIRS, schedule="adaptive", base_seed=3
        )
        two = fuzz_races(
            figure1.build(), PAIRS, schedule="adaptive", base_seed=3
        )
        assert _campaign_signature(one) == _campaign_signature(two)

    def test_different_seed_may_differ_but_stays_deterministic(self):
        sched_a = _adaptive(seed=1)
        sched_b = _adaptive(seed=1)
        sched_a.bind(PAIRS, chunk_size=5)
        sched_b.bind(PAIRS, chunk_size=5)
        assert sched_a.next_batch() == sched_b.next_batch()


class TestGradeBoost:
    def test_graded_pairs_start_with_boosted_alpha(self):
        sched = _adaptive(grade_boost=2.5)
        sched.bind(PAIRS, chunk_size=5, grades=[True, None])
        alphas = [post.alpha for post in sched._posteriors]
        assert alphas == [1.0 + 2.5, 1.0]
        betas = [post.beta for post in sched._posteriors]
        assert betas == [1.0, 1.0]

    def test_speculative_and_ungraded_get_no_boost(self):
        sched = _adaptive(grade_boost=2.5)
        sched.bind(PAIRS, chunk_size=5, grades=[False, None])
        assert [post.alpha for post in sched._posteriors] == [1.0, 1.0]

    def test_no_grades_leaves_priors_untouched(self):
        plain = _adaptive()
        graded = _adaptive()
        plain.bind(PAIRS, chunk_size=5)
        graded.bind(PAIRS, chunk_size=5, grades=[None, None])
        assert [p.alpha for p in plain._posteriors] == [
            p.alpha for p in graded._posteriors
        ]
        assert plain.next_batch() == graded.next_batch()

    def test_grades_length_mismatch_rejected(self):
        sched = _adaptive()
        with pytest.raises(ValueError, match="grades length"):
            sched.bind(PAIRS, chunk_size=5, grades=[True])

    def test_negative_grade_boost_rejected(self):
        with pytest.raises(ValueError, match="grade_boost"):
            _adaptive(grade_boost=-0.1)

    def test_graded_campaign_stays_deterministic(self):
        def run():
            sched = _adaptive(grade_boost=3.0)
            verdicts = fuzz_races(
                figure1.build(), PAIRS, chunk_size=5, schedule=sched,
                grades=[True, False],
            )
            return sched.allocation_log, _campaign_signature(verdicts)

        assert run() == run()

    def test_driver_feeds_phase1_grades_into_schedule(self):
        from repro.core import race_directed_test

        sched = _adaptive()
        race_directed_test(
            figure1.build(),
            detector="shb",
            phase1_seeds=range(2),
            trials=10,
            chunk_size=5,
            max_steps=20_000,
            schedule=sched,
        )
        # Only predictive detectors grade pairs; with shb the driver
        # must have handed a non-None grade to bind().
        assert any(grade is not None for grade in sched.grades)


class TestCheckpointResume:
    def _run(self, tmp_path, journal_name="journal.jsonl"):
        sched = _adaptive()
        verdicts = fuzz_races(
            figure1.build(),
            PAIRS,
            chunk_size=5,
            schedule=sched,
            checkpoint=tmp_path / journal_name,
        )
        return sched, verdicts

    def test_resume_mid_campaign_replays_to_identical_report(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        first_sched, first = self._run(tmp_path)
        lines = journal.read_text().splitlines()
        assert len(lines) >= 2
        # Kill the campaign "mid-flight": keep only the first half of the
        # journaled chunks, then restart with the same parameters.
        journal.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        resumed_sched, resumed = self._run(tmp_path)
        assert _campaign_signature(resumed) == _campaign_signature(first)
        assert resumed_sched.allocation_log == first_sched.allocation_log

    def test_warm_journal_re_executes_nothing(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        self._run(tmp_path)
        before = journal.read_text()
        keys_before = [json.loads(line)["key"] for line in before.splitlines()]
        _, warm = self._run(tmp_path)
        keys_after = [
            json.loads(line)["key"]
            for line in journal.read_text().splitlines()
        ]
        # Every chunk was a cache hit: nothing new was journaled, and the
        # verdicts still came out whole.
        assert keys_after == keys_before
        assert warm[figure1.REAL_PAIR].times_created > 0
