"""Mining check-then-act candidates, then closing the loop with the fuzzer."""

from repro.core import AtomicityFuzzer
from repro.core.atomicity_detect import detect_atomic_regions
from repro.runtime import Lock, Program, SharedVar, join_all, ops, spawn_all


def _stale_check_program(pad: int = 6):
    """The bank-withdrawal bug from the fuzzer tests, unlabelled this time:
    Phase 1 must find the pattern from raw source sites."""

    def factory():
        balance = SharedVar("balance", 10)
        dispensed = SharedVar("dispensed", 0)
        lock = Lock("L")

        def slow_withdraw():
            yield lock.acquire()
            current = yield balance.read()
            yield lock.release()
            if current >= 10:
                for _ in range(pad):
                    yield ops.yield_point()
                yield lock.acquire()
                yield balance.write(current - 10)
                cash = yield dispensed.read()
                yield dispensed.write(cash + 10)
                yield lock.release()

        def fast_withdraw():
            yield lock.acquire()
            current = yield balance.read()
            if current >= 10:
                yield balance.write(current - 10)
                cash = yield dispensed.read()
                yield dispensed.write(cash + 10)
            yield lock.release()

        def main():
            handles = yield from spawn_all([slow_withdraw, fast_withdraw])
            yield from join_all(handles)
            total = yield dispensed.read()
            yield ops.check(total <= 10, f"dispensed {total} of 10")

        return main()

    return Program(factory, name="stale-check")


def _atomic_control_program():
    """Check and act inside ONE critical section: no candidate pattern."""

    def factory():
        balance = SharedVar("balance", 10)
        lock = Lock("L")

        def withdraw():
            yield lock.acquire()
            current = yield balance.read()
            if current >= 10:
                yield balance.write(current - 10)
            yield lock.release()

        def main():
            handles = yield from spawn_all([withdraw, withdraw])
            yield from join_all(handles)

        return main()

    return Program(factory, name="atomic-control")


class TestDetection:
    def test_finds_the_stale_check_pattern(self):
        candidates = detect_atomic_regions(_stale_check_program(), seeds=range(4))
        assert candidates
        # The mined region spans the unlocked gap: check stmt differs from
        # the act's acquire stmt, and the rival is the fast path's acquire.
        spanning = [
            c for c in candidates if c.region.first != c.region.second
        ]
        assert spanning
        for candidate in candidates:
            assert candidate.lock.describe() == "L"

    def test_atomic_control_yields_no_candidates(self):
        assert detect_atomic_regions(_atomic_control_program(), seeds=range(4)) == []

    def test_unlocked_accesses_are_not_candidates(self):
        """Bare racy accesses are RaceFuzzer's department, not this one's."""

        def factory():
            x = SharedVar("x", 0)

            def writer():
                value = yield x.read()
                yield x.write(value + 1)

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        assert detect_atomic_regions(Program(factory), seeds=range(4)) == []


class TestEndToEnd:
    def test_mined_candidates_drive_the_fuzzer_to_the_violation(self):
        program_builder = _stale_check_program
        candidates = detect_atomic_regions(program_builder(), seeds=range(4))
        assert candidates
        violated = 0
        for candidate in candidates:
            fuzzer = AtomicityFuzzer(
                candidate.region, candidate.rival, max_steps=50_000
            )
            for seed in range(10):
                outcome = fuzzer.run(program_builder(), seed=seed)
                if any(
                    crash.error_type == "AssertionViolation"
                    for crash in outcome.crashes
                ):
                    violated += 1
        assert violated > 0, "no mined candidate produced the overdraft"

    def test_control_program_survives_fuzzing_of_foreign_candidates(self):
        """Candidates mined elsewhere do nothing to an atomic program."""
        candidates = detect_atomic_regions(_stale_check_program(), seeds=range(3))
        fuzzer = AtomicityFuzzer(
            candidates[0].region, candidates[0].rival, max_steps=50_000
        )
        for seed in range(5):
            outcome = fuzzer.run(_atomic_control_program(), seed=seed)
            assert not outcome.crashes
            assert not outcome.deadlock
