"""Atomicity-violation-directed active testing."""

from repro.core import AtomicityFuzzer, AtomicRegion, RandomScheduler
from repro.runtime import Execution, Lock, Program, SharedVar, join_all, ops, spawn_all
from repro.runtime.statement import Statement


def _check_then_act_factory(pad: int = 8):
    """The canonical single-variable atomicity violation: a lock-protected
    read-check and a lock-protected write that are *individually* atomic
    but not jointly — a foreign locked write between them breaks the
    invariant.  Note there is NO data race: everything is locked."""

    def factory():
        balance = SharedVar("balance", 10)
        dispensed = SharedVar("dispensed", 0)
        lock = Lock("L")

        def withdraw():
            yield lock.acquire()
            current = yield balance.read(label="check")
            yield lock.release()
            if current >= 10:
                for _ in range(pad):
                    yield ops.yield_point()
                # The region's second point is this acquire: postponing here
                # (outside the lock) lets the rival's critical section in.
                yield lock.acquire(label="act-acquire")
                yield balance.write(current - 10, label="act")
                cash = yield dispensed.read()
                yield dispensed.write(cash + 10)
                yield lock.release()

        def rival_withdraw():
            # Rival's postponement point is also its acquire (outside the
            # lock), so both sides can be paused simultaneously.
            yield lock.acquire(label="rival-acquire")
            current = yield balance.read()
            if current >= 10:
                yield balance.write(current - 10, label="rival")
                cash = yield dispensed.read()
                yield dispensed.write(cash + 10)
            yield lock.release()

        def main():
            handles = yield from spawn_all([withdraw, rival_withdraw])
            yield from join_all(handles)
            total = yield dispensed.read()
            yield ops.check(
                total <= 10, f"dispensed {total} from a balance of 10"
            )

        return main()

    return Program(factory, name="bank")


REGION = AtomicRegion(Statement(label="check"), Statement(label="act-acquire"))
RIVAL = Statement(label="rival-acquire")


class TestAtomicityFuzzer:
    def test_violation_forced_with_high_probability(self):
        fuzzer = AtomicityFuzzer(REGION, RIVAL, max_steps=50_000)
        outcomes = [
            fuzzer.run(_check_then_act_factory(), seed=seed) for seed in range(20)
        ]
        created = [o for o in outcomes if o.created]
        assert len(created) >= 16
        # The forced interleaving is the non-serializable one: the stale
        # check-then-act overdraws the account.
        violated = [
            o for o in created
            if any(c.error_type == "AssertionViolation" for c in o.crashes)
        ]
        assert violated, "forced interleaving never produced the overdraft"

    def test_rival_is_always_serialized_inside_the_region(self):
        fuzzer = AtomicityFuzzer(REGION, RIVAL, max_steps=50_000)
        for seed in range(10):
            outcome = fuzzer.run(_check_then_act_factory(), seed=seed)
            for hit in outcome.hits:
                assert hit.pair.first.site in ("act-acquire", "rival-acquire")
                assert hit.pair.second.site in ("act-acquire", "rival-acquire")

    def test_passive_scheduler_rarely_violates(self):
        violations = 0
        for seed in range(30):
            result = Execution(_check_then_act_factory(), seed=seed).run(
                RandomScheduler(preemption="every")
            )
            violations += bool(result.crashes)
        # The window is `pad` statements wide out of a long execution.
        assert violations < 30  # sanity: not every run violates

    def test_no_violation_when_region_is_actually_atomic(self):
        """Control: hold the lock across check and act; the fuzzer must not
        create the interleaving (the rival can never run in between)."""

        def factory():
            balance = SharedVar("balance", 10)
            lock = Lock("L")

            dispensed = SharedVar("dispensed", 0)

            def withdraw():
                yield lock.acquire()
                current = yield balance.read(label="check")
                if current >= 10:
                    yield balance.write(current - 10, label="act")
                    cash = yield dispensed.read()
                    yield dispensed.write(cash + 10)
                yield lock.release()

            def rival_withdraw():
                yield lock.acquire(label="rival-acquire")
                current = yield balance.read()
                if current >= 10:
                    yield balance.write(current - 10, label="rival")
                    cash = yield dispensed.read()
                    yield dispensed.write(cash + 10)
                yield lock.release()

            def main():
                handles = yield from spawn_all([withdraw, rival_withdraw])
                yield from join_all(handles)
                total = yield dispensed.read()
                yield ops.check(
                    total <= 10, f"dispensed {total} from a balance of 10"
                )

            return main()

        fuzzer = AtomicityFuzzer(REGION, RIVAL, max_steps=50_000)
        for seed in range(15):
            outcome = fuzzer.run(Program(factory), seed=seed)
            assert not outcome.crashes, f"seed {seed}"
            assert not outcome.result.deadlock
