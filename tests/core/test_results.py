"""Verdict aggregation and crash attribution."""

from repro.core.postponing import FuzzResult, TargetHit
from repro.core.results import CampaignReport, PairVerdict
from repro.detectors.report import RaceReport
from repro.runtime.events import ErrorInfo
from repro.runtime.interpreter import ExecutionResult, ThreadCrash
from repro.runtime.errors import SimulatedError
from repro.runtime.statement import Statement, StatementPair


def _pair(a="a", b="b"):
    return StatementPair(Statement(label=a), Statement(label=b))


def _result(crashes=(), deadlock=False):
    result = ExecutionResult(program="p", seed=0)
    result.crashes = list(crashes)
    result.deadlock = deadlock
    return result


def _crash(tid=1, step=50, kind="SimulatedError"):
    error = ErrorInfo(type=kind, message="x", module=SimulatedError.__module__)
    return ThreadCrash(tid=tid, name=f"t{tid}", error=error, stmt=None, step=step)


def _hit(pair, tids=(1, 2), step=10):
    return TargetHit(
        step=step, pair=pair, tids=tids, location_name="x", executed_arrival=True
    )


class TestPairVerdictAttribution:
    def test_crash_after_hit_in_hit_thread_is_attributed(self):
        verdict = PairVerdict(pair=_pair())
        hit = _hit(_pair())
        outcome = FuzzResult(
            result=_result(crashes=[_crash(tid=2, step=90)]),
            hits=[hit],
            pairs_created={_pair()},
        )
        verdict.absorb(outcome)
        assert verdict.is_real and verdict.is_harmful
        assert sum(verdict.exceptions.values()) == 1
        assert not verdict.unattributed_exceptions

    def test_crash_before_hit_is_unattributed(self):
        verdict = PairVerdict(pair=_pair())
        outcome = FuzzResult(
            result=_result(crashes=[_crash(tid=2, step=5)]),
            hits=[_hit(_pair(), step=10)],
            pairs_created={_pair()},
        )
        verdict.absorb(outcome)
        assert verdict.is_real
        assert not verdict.is_harmful
        assert sum(verdict.unattributed_exceptions.values()) == 1

    def test_crash_in_unrelated_thread_is_unattributed(self):
        verdict = PairVerdict(pair=_pair())
        outcome = FuzzResult(
            result=_result(crashes=[_crash(tid=9, step=90)]),
            hits=[_hit(_pair(), tids=(1, 2))],
            pairs_created={_pair()},
        )
        verdict.absorb(outcome)
        assert not verdict.is_harmful

    def test_crash_without_any_hit_is_unattributed(self):
        verdict = PairVerdict(pair=_pair())
        outcome = FuzzResult(result=_result(crashes=[_crash()]))
        verdict.absorb(outcome)
        assert not verdict.is_real
        assert not verdict.is_harmful
        assert sum(verdict.unattributed_exceptions.values()) == 1

    def test_probability_and_deadlocks(self):
        verdict = PairVerdict(pair=_pair())
        verdict.absorb(FuzzResult(result=_result()))
        verdict.absorb(
            FuzzResult(
                result=_result(deadlock=True),
                hits=[_hit(_pair())],
                pairs_created={_pair()},
            )
        )
        assert verdict.trials == 2
        assert verdict.probability == 0.5
        assert verdict.deadlocks == 1

    def test_empty_verdict_probability_zero(self):
        assert PairVerdict(pair=_pair()).probability == 0.0

    def test_describe(self):
        verdict = PairVerdict(pair=_pair())
        verdict.absorb(
            FuzzResult(
                result=_result(crashes=[_crash(tid=1, step=99)]),
                hits=[_hit(_pair())],
                pairs_created={_pair()},
            )
        )
        text = verdict.describe()
        assert "REAL" in text and "p=1.00" in text and "exceptions=" in text


class TestCampaignReport:
    def _campaign(self):
        phase1 = RaceReport(program="p", detector="hybrid")
        campaign = CampaignReport(program="p", phase1=phase1)
        real = PairVerdict(pair=_pair("a", "b"))
        real.absorb(
            FuzzResult(
                result=_result(crashes=[_crash(tid=1, step=99)]),
                hits=[_hit(_pair("a", "b"))],
                pairs_created={_pair("a", "b")},
            )
        )
        false = PairVerdict(pair=_pair("c", "d"))
        false.absorb(FuzzResult(result=_result()))
        campaign.verdicts = {_pair("a", "b"): real, _pair("c", "d"): false}
        return campaign

    def test_real_and_harmful_lists(self):
        campaign = self._campaign()
        assert campaign.real_pairs == [_pair("a", "b")]
        assert campaign.harmful_pairs == [_pair("a", "b")]

    def test_mean_probability_over_real_pairs_only(self):
        campaign = self._campaign()
        assert campaign.mean_probability() == 1.0

    def test_mean_probability_empty(self):
        campaign = CampaignReport(
            program="p", phase1=RaceReport(program="p", detector="hybrid")
        )
        assert campaign.mean_probability() == 0.0

    def test_exception_types_aggregate(self):
        campaign = self._campaign()
        assert sum(campaign.exception_types.values()) == 1

    def test_verdict_for(self):
        campaign = self._campaign()
        assert campaign.verdict_for(_pair("a", "b")).is_real
