"""The campaign supervisor: deadlines, retry, quarantine, resume.

The acceptance bar (ISSUE 2): inject one crash, one hang and one pool
kill into a 20-pair parallel campaign and the campaign must complete,
quarantining only the poisoned chunk, with every other pair's verdict
identical to a fault-free serial run; kill a checkpointed campaign
mid-run and the restart must re-execute only the unfinished tasks and
produce the same final report.
"""

import json
import signal
import time

import pytest

from repro.core import (
    ParallelCampaign,
    RaceFuzzer,
    RetryPolicy,
    TaskDeadlineExceeded,
    compute_backoff,
    fuzz_races,
    race_directed_test,
)
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.supervisor import CampaignSupervisor, CheckpointJournal, resolve_jobs, wall_deadline
from repro.runtime.statement import Statement, StatementPair
from repro.workloads import figure1

#: 20 pairs, 1 chunk each at chunk_size=4/trials=4 — so fuzz-task index i
#: targets pair i.  The synthetic labelled pairs never match a figure1
#: statement, which makes them cheap no-target trials.
PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR] + [
    StatementPair(Statement(label=f"x{i}"), Statement(label=f"y{i}"))
    for i in range(18)
]

FAST_RETRY = 2  # default max_retries, spelled out where tests rely on it


def _signature(verdict):
    """Everything deterministic in a verdict (wall-clock is measured)."""
    return (
        verdict.trials,
        verdict.times_created,
        dict(verdict.exceptions),
        dict(verdict.unattributed_exceptions),
        verdict.deadlocks,
        verdict.truncated,
        verdict.created_pairs,
    )


@pytest.fixture(scope="module")
def serial_baseline():
    """The fault-free serial reference the supervised runs must match."""
    return fuzz_races(figure1.build(), PAIRS, trials=4)


class TestPrimitives:
    def test_resolve_jobs_contract(self):
        import os

        auto = os.cpu_count() or 1
        assert resolve_jobs(None) == auto
        assert resolve_jobs(0) == auto
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        with pytest.raises(ValueError, match="jobs must be"):
            resolve_jobs(-1)

    def test_wall_deadline_interrupts_a_sleep(self):
        start = time.perf_counter()
        with pytest.raises(TaskDeadlineExceeded):
            with wall_deadline(0.05):
                time.sleep(5.0)
        assert time.perf_counter() - start < 1.0

    def test_wall_deadline_none_is_a_noop(self):
        with wall_deadline(None):
            pass

    def test_wall_deadline_restores_previous_handler(self):
        before = signal.getsignal(signal.SIGALRM)
        with wall_deadline(10.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is before

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0, jitter=0.25
        )
        for index in range(4):
            for attempt in range(6):
                delay = compute_backoff(policy, index, attempt)
                assert delay == compute_backoff(policy, index, attempt)
                raw = min(1.0, 0.1 * 2.0**attempt)
                assert raw <= delay <= raw * 1.25

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=3.0, jitter=0.0)
        assert compute_backoff(policy, 0, 0) == 0.5
        assert compute_backoff(policy, 0, 1) == 1.5
        assert compute_backoff(policy, 0, 5) == 2.0  # capped

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_supervisor_coerces_int_retry(self):
        supervisor = CampaignSupervisor(retry=5)
        assert supervisor.retry.max_retries == 5
        with pytest.raises(ValueError, match="deadline"):
            CampaignSupervisor(deadline=0.0)


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.append("a", {"x": 1})
        journal.append("b", [1, 2])
        journal.close()
        assert CheckpointJournal(tmp_path / "j.jsonl").load() == {
            "a": {"x": 1},
            "b": [1, 2],
        }

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.jsonl").load() == {}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("good", 42)
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"key": "torn", "resu')  # killed mid-write
        assert CheckpointJournal(path).load() == {"good": 42}


class TestFaultInjectionAcceptance:
    def test_injected_faults_quarantine_only_the_poisoned_chunk(
        self, serial_baseline
    ):
        """The ISSUE acceptance scenario: crash + hang + pool kill, 20 pairs."""
        plan = FaultPlan(
            [
                # Poisoned: crashes on every attempt -> quarantine.
                FaultSpec(kind="crash", index=2, attempts=99),
                # Transient wedge: first attempt hangs past the deadline,
                # the retry completes.
                FaultSpec(kind="hang", index=5, attempts=1, delay=30.0),
                # One worker death breaks the pool; the supervisor rebuilds
                # it and every in-flight task recovers on retry.
                FaultSpec(kind="pool_kill", index=9, attempts=1),
            ]
        )
        verdicts = fuzz_races(
            figure1.build(),
            PAIRS,
            trials=4,
            jobs=4,
            chunk_size=4,
            deadline=1.0,
            faults=plan,
        )
        assert set(verdicts) == set(PAIRS)
        poisoned = PAIRS[2]
        assert verdicts[poisoned].quarantined
        assert verdicts[poisoned].trials == 0
        failure = verdicts[poisoned].errors[0]
        assert failure.kind == "crash"
        assert failure.attempts == FAST_RETRY + 1
        assert len(failure.history) == failure.attempts
        for pair in PAIRS:
            if pair is poisoned:
                continue
            assert not verdicts[pair].quarantined
            assert _signature(verdicts[pair]) == _signature(
                serial_baseline[pair]
            ), f"verdict for {pair} diverged from the fault-free serial run"

    def test_transient_crash_recovers_invisibly(self, serial_baseline):
        plan = FaultPlan([FaultSpec(kind="crash", index=0, attempts=1)])
        with ParallelCampaign(jobs=1, chunk_size=4, faults=plan) as engine:
            verdicts = engine.fuzz("figure1", PAIRS[:3], trials=4)
        assert engine.last_report.retried == 1
        assert not engine.failures
        for pair in PAIRS[:3]:
            assert _signature(verdicts[pair]) == _signature(serial_baseline[pair])

    def test_malformed_result_is_retried(self, serial_baseline):
        plan = FaultPlan([FaultSpec(kind="malformed", index=1, attempts=1)])
        with ParallelCampaign(jobs=1, chunk_size=4, faults=plan) as engine:
            verdicts = engine.fuzz("figure1", PAIRS[:3], trials=4)
        assert engine.last_report.retried == 1
        assert not engine.failures
        assert _signature(verdicts[PAIRS[1]]) == _signature(
            serial_baseline[PAIRS[1]]
        )

    def test_deadline_quarantines_a_persistent_hang(self):
        plan = FaultPlan([FaultSpec(kind="hang", index=0, attempts=99, delay=30.0)])
        verdicts = fuzz_races(
            figure1.build(),
            [figure1.REAL_PAIR],
            trials=2,
            deadline=0.2,
            retries=1,
            faults=plan,
        )
        verdict = verdicts[figure1.REAL_PAIR]
        assert verdict.quarantined
        assert verdict.trials == 0
        assert verdict.errors[0].kind == "deadline"
        assert "deadline" in verdict.errors[0].message

    def test_persistent_pool_kill_degrades_to_serial_fallback(
        self, serial_baseline
    ):
        plan = FaultPlan([FaultSpec(kind="pool_kill", index=0, attempts=99)])
        with ParallelCampaign(
            jobs=2, chunk_size=4, faults=plan, pool_death_limit=1
        ) as engine:
            verdicts = engine.fuzz("figure1", PAIRS[:4], trials=4)
        assert engine.supervisor.serial_fallback
        assert engine.supervisor.pool_deaths == 2
        # The killer itself ends quarantined (inline it degrades to a
        # crash), everyone else completes with serial-identical verdicts.
        assert verdicts[PAIRS[0]].quarantined
        for pair in PAIRS[1:4]:
            assert not verdicts[pair].quarantined
            assert _signature(verdicts[pair]) == _signature(serial_baseline[pair])

    def test_detect_phase_quarantine_keeps_other_seeds(self):
        plan = FaultPlan(
            [FaultSpec(kind="crash", index=1, phase="detect", attempts=99)]
        )
        with ParallelCampaign(jobs=1, faults=plan, retry=0) as engine:
            report = engine.detect("figure1", seeds=[0, 1, 2])
        assert len(engine.failures) == 1
        assert engine.failures[0].phase == "detect"
        # Seeds 0 and 2 still contributed: the union covers both pairs.
        assert figure1.REAL_PAIR in report.pairs
        assert figure1.FALSE_PAIR in report.pairs

    def test_failures_reach_the_campaign_report(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=0, attempts=99)])
        campaign = race_directed_test(
            figure1.build(), trials=4, chunk_size=4, retries=0, faults=plan
        )
        assert campaign.quarantined
        assert len(campaign.failures) == 1
        assert "quarantined" in str(campaign)
        assert campaign.failures[0].describe() in str(campaign)


class TestCheckpointResume:
    def test_killed_campaign_resumes_from_journal(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        pairs = [figure1.REAL_PAIR, figure1.FALSE_PAIR]
        baseline = fuzz_races(figure1.build(), pairs, trials=6)

        full = fuzz_races(
            figure1.build(), pairs, trials=6, chunk_size=2, checkpoint=path
        )
        for pair in pairs:
            assert _signature(full[pair]) == _signature(baseline[pair])
        lines = open(path).read().splitlines()
        assert len(lines) == 6  # 3 chunks per pair

        # Simulate a campaign killed after two chunks: truncate the journal.
        with open(path, "w") as fh:
            fh.write("\n".join(lines[:2]) + "\n")
        with ParallelCampaign(jobs=1, chunk_size=2, checkpoint=path) as engine:
            resumed = engine.fuzz("figure1", pairs, trials=6)
            assert engine.last_report.cached == 2  # only 4 tasks re-ran
        for pair in pairs:
            assert _signature(resumed[pair]) == _signature(baseline[pair])
        # The journal was replenished for the next resume.
        assert len(open(path).read().splitlines()) == 6

    def test_completed_journal_skips_all_work(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        pairs = [figure1.REAL_PAIR]
        first = fuzz_races(
            figure1.build(), pairs, trials=4, chunk_size=2, checkpoint=path
        )
        with ParallelCampaign(jobs=1, chunk_size=2, checkpoint=path) as engine:
            second = engine.fuzz("figure1", pairs, trials=4)
            assert engine.last_report.cached == 2
        assert _signature(first[pairs[0]]) == _signature(second[pairs[0]])

    def test_protocol_change_misses_the_cache(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        pairs = [figure1.REAL_PAIR]
        fuzz_races(figure1.build(), pairs, trials=4, chunk_size=2, checkpoint=path)
        # Different max_steps -> different task keys -> full re-run.
        with ParallelCampaign(jobs=1, chunk_size=2, checkpoint=path) as engine:
            engine.fuzz("figure1", pairs, trials=4, max_steps=500_000)
            assert engine.last_report.cached == 0

    def test_resume_works_under_a_pool(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        pairs = [figure1.REAL_PAIR, figure1.FALSE_PAIR]
        baseline = fuzz_races(figure1.build(), pairs, trials=6)
        fuzz_races(
            figure1.build(), pairs, trials=6, chunk_size=3, checkpoint=path
        )
        lines = open(path).read().splitlines()
        with open(path, "w") as fh:
            fh.write("\n".join(lines[:1]) + "\n")
        resumed = fuzz_races(
            figure1.build(),
            pairs,
            trials=6,
            chunk_size=3,
            checkpoint=path,
            jobs=2,
        )
        for pair in pairs:
            assert _signature(resumed[pair]) == _signature(baseline[pair])

    def test_corrupt_record_reruns_that_task(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        pairs = [figure1.REAL_PAIR]
        baseline = fuzz_races(figure1.build(), pairs, trials=2)
        fuzz_races(figure1.build(), pairs, trials=2, chunk_size=2, checkpoint=path)
        record = json.loads(open(path).read().splitlines()[0])
        record["result"] = {"not": "a verdict"}
        with open(path, "w") as fh:
            fh.write(json.dumps(record) + "\n")
        resumed = fuzz_races(
            figure1.build(), pairs, trials=2, chunk_size=2, checkpoint=path
        )
        assert _signature(resumed[pairs[0]]) == _signature(baseline[pairs[0]])


class TestTruncation:
    """Satellite: livelocked trials truncate; they never abort a campaign."""

    def test_tiny_budgets_never_escape_the_fuzzer(self):
        # Before the postponing.py guard, race resolution could step past
        # the budget and raise ExecutionLimitExceeded out of the trial.
        truncated = 0
        for max_steps in (4, 6, 8, 10, 14):
            fuzzer = RaceFuzzer(figure1.REAL_PAIR, max_steps=max_steps)
            for seed in range(6):
                outcome = fuzzer.run(figure1.build(), seed=seed)
                truncated += outcome.result.truncated
        assert truncated > 0

    def test_truncated_aggregates_identical_serial_vs_parallel(self):
        pairs = [figure1.REAL_PAIR, figure1.FALSE_PAIR]
        serial = fuzz_races(figure1.build(), pairs, trials=6, max_steps=10)
        parallel = fuzz_races(
            figure1.build(), pairs, trials=6, max_steps=10, jobs=4, chunk_size=2
        )
        assert sum(v.truncated for v in serial.values()) > 0
        for pair in pairs:
            assert _signature(serial[pair]) == _signature(parallel[pair])

    def test_truncation_is_reported_not_fatal(self):
        verdicts = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=3, max_steps=10
        )
        verdict = verdicts[figure1.REAL_PAIR]
        assert verdict.trials == 3
        assert verdict.truncated > 0
        assert "truncated=" in verdict.describe()


class TestResourceGovernance:
    """ISSUE 7: memory budgets, disk-kind classification, health wiring."""

    def test_transient_disk_full_recovers(self, serial_baseline):
        plan = FaultPlan([FaultSpec(kind="disk_full", index=0, attempts=1)])
        with ParallelCampaign(jobs=1, chunk_size=4, faults=plan) as engine:
            verdicts = engine.fuzz("figure1", PAIRS[:3], trials=4)
        assert engine.last_report.retried == 1
        assert not engine.failures
        # ENOSPC is disk pressure: the health controller heard about it.
        assert engine.health.disk_budget_hits == 1
        for pair in PAIRS[:3]:
            assert _signature(verdicts[pair]) == _signature(serial_baseline[pair])

    def test_persistent_disk_full_quarantines_as_disk(self):
        plan = FaultPlan([FaultSpec(kind="disk_full", index=0, attempts=99)])
        with ParallelCampaign(
            jobs=1, chunk_size=4, faults=plan, retry=0
        ) as engine:
            engine.fuzz("figure1", PAIRS[:2], trials=4)
        assert [f.kind for f in engine.failures] == ["disk"]

    def _fake_rss(self, monkeypatch, readings):
        """Deterministic ru_maxrss: the supervisor reads (baseline, peak)
        once per attempt when a budget is armed."""
        import itertools

        from repro.core import supervisor

        feed = itertools.chain(readings, itertools.repeat(readings[-1]))
        monkeypatch.setattr(supervisor, "_maxrss_mb", lambda: next(feed))

    def test_blown_memory_budget_is_retried(self, serial_baseline, monkeypatch):
        # Attempt 0 of task 0 grows peak RSS 100 -> 400 MiB (over budget);
        # every later reading holds at 400, so retries see a zero delta.
        self._fake_rss(monkeypatch, [100.0, 400.0, 400.0])
        with ParallelCampaign(
            jobs=1, chunk_size=4, memory_budget_mb=50
        ) as engine:
            verdicts = engine.fuzz("figure1", PAIRS[:3], trials=4)
        assert engine.last_report.retried == 1
        assert not engine.failures
        assert engine.health.memory_failures == 1
        for pair in PAIRS[:3]:
            assert _signature(verdicts[pair]) == _signature(serial_baseline[pair])

    def test_leaky_task_quarantines_as_memory(self, monkeypatch):
        # Every attempt of every task blows the budget: alternating
        # baseline/peak readings that always grow by 300 MiB.
        import itertools

        from repro.core import supervisor

        feed = itertools.count(100.0, 300.0)
        monkeypatch.setattr(supervisor, "_maxrss_mb", lambda: next(feed))
        with ParallelCampaign(
            jobs=1, chunk_size=4, memory_budget_mb=50, retry=0
        ) as engine:
            engine.fuzz("figure1", PAIRS[:2], trials=4)
        assert sorted(f.kind for f in engine.failures) == ["memory", "memory"]
        assert engine.health.memory_failures == 2
        assert engine.health.state == "degraded"

    def test_memory_budget_validation(self):
        with pytest.raises(ValueError, match="memory_budget_mb"):
            CampaignSupervisor(memory_budget_mb=0)

    def test_unbudgeted_tasks_never_read_rusage(self, monkeypatch):
        from repro.core import supervisor

        def boom():
            raise AssertionError("rusage read without a budget")

        monkeypatch.setattr(supervisor, "_maxrss_mb", boom)
        with ParallelCampaign(jobs=1, chunk_size=4) as engine:
            engine.fuzz("figure1", PAIRS[:1], trials=4)
        assert not engine.failures
