"""The deterministic fault-injection layer behind the supervisor tests."""

import pickle

import pytest

from repro.core.faults import (
    CRASH,
    FAULT_KINDS,
    HANG,
    MALFORMED,
    MALFORMED_SENTINEL,
    POOL_KILL,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    apply_fault,
    parse_fault_plan,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", index=0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="index"):
            FaultSpec(kind=CRASH, index=-1)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(kind=CRASH, index=0, attempts=0)

    def test_fires_on_first_attempts_only(self):
        transient = FaultSpec(kind=CRASH, index=0, attempts=1)
        assert transient.fires(0)
        assert not transient.fires(1)
        poisoned = FaultSpec(kind=CRASH, index=0, attempts=99)
        assert all(poisoned.fires(k) for k in range(10))

    def test_specs_are_picklable(self):
        # Specs travel inside TaskEnvelopes to worker processes.
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind=kind, index=3, attempts=2, delay=0.5)
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestFaultPlan:
    def test_at_resolves_by_phase_and_index(self):
        plan = FaultPlan(
            [
                FaultSpec(kind=CRASH, index=2, phase="fuzz"),
                FaultSpec(kind=HANG, index=2, phase="detect"),
            ]
        )
        assert plan.at("fuzz", 2).kind == CRASH
        assert plan.at("detect", 2).kind == HANG
        assert plan.at("fuzz", 3) is None

    def test_duplicate_target_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FaultPlan(
                [
                    FaultSpec(kind=CRASH, index=1),
                    FaultSpec(kind=HANG, index=1),
                ]
            )

    def test_plans_are_value_objects(self):
        specs = [FaultSpec(kind=CRASH, index=0), FaultSpec(kind=HANG, index=4)]
        assert FaultPlan(specs) == FaultPlan(list(reversed(specs)))
        assert list(FaultPlan(specs)) == sorted(
            specs, key=lambda s: (s.phase, s.index)
        )

    def test_sample_is_reproducible(self):
        kwargs = dict(crash_rate=0.2, hang_rate=0.1, pool_kill_rate=0.05)
        one = FaultPlan.sample(7, 100, **kwargs)
        two = FaultPlan.sample(7, 100, **kwargs)
        assert one == two
        assert len(one) > 0
        assert FaultPlan.sample(8, 100, **kwargs) != one

    def test_sample_rejects_rates_over_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan.sample(0, 10, crash_rate=0.7, hang_rate=0.5)


class TestApplyFault:
    def test_crash_raises_injected_crash(self):
        with pytest.raises(InjectedCrash):
            apply_fault(FaultSpec(kind=CRASH, index=0), in_worker=False)

    def test_malformed_is_a_pre_task_noop(self):
        apply_fault(FaultSpec(kind=MALFORMED, index=0), in_worker=False)

    def test_pool_kill_degrades_to_crash_inline(self):
        # In-worker it would os._exit; inline (serial path / fallback) it
        # must raise instead of taking the campaign down.
        with pytest.raises(InjectedCrash, match="inline"):
            apply_fault(FaultSpec(kind=POOL_KILL, index=0), in_worker=False)

    def test_hang_sleeps_for_delay(self):
        import time

        start = time.perf_counter()
        apply_fault(FaultSpec(kind=HANG, index=0, delay=0.05), in_worker=False)
        assert time.perf_counter() - start >= 0.05


class TestParseFaultPlan:
    def test_parses_full_and_short_forms(self):
        plan = parse_fault_plan("fuzz:0:crash,fuzz:7:hang:2:5.0,detect:1:pool_kill")
        assert plan.at("fuzz", 0) == FaultSpec(kind=CRASH, index=0)
        assert plan.at("fuzz", 7) == FaultSpec(
            kind=HANG, index=7, attempts=2, delay=5.0
        )
        assert plan.at("detect", 1).kind == POOL_KILL

    def test_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            parse_fault_plan("fuzz:0")
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_plan("fuzz:0:nope")

    def test_blank_chunks_ignored(self):
        assert len(parse_fault_plan("fuzz:0:crash, ,")) == 1

    def test_sentinel_is_not_a_legitimate_result(self):
        # The supervisor's validate hooks reject it by type; keep it a str.
        assert isinstance(MALFORMED_SENTINEL, str)


class TestRobustnessFaultKinds:
    """The ISSUE-7 kinds: memory_hog, disk_full, corrupt_trace."""

    def test_new_kinds_are_registered(self):
        from repro.core.faults import CORRUPT_TRACE, DISK_FULL, MEMORY_HOG

        assert {MEMORY_HOG, DISK_FULL, CORRUPT_TRACE} <= set(FAULT_KINDS)

    def test_spec_validates_mb(self):
        from repro.core.faults import MEMORY_HOG

        with pytest.raises(ValueError, match="mb"):
            FaultSpec(kind=MEMORY_HOG, index=0, mb=0)

    def test_disk_full_raises_enospc(self):
        import errno

        from repro.core.faults import DISK_FULL, InjectedDiskFull

        with pytest.raises(InjectedDiskFull) as info:
            apply_fault(FaultSpec(kind=DISK_FULL, index=3), in_worker=False)
        assert info.value.errno == errno.ENOSPC
        assert isinstance(info.value, OSError)

    def test_memory_hog_allocates_and_releases(self):
        from repro.core.faults import MEMORY_HOG

        # Small hog: the point here is it runs and frees, not the size.
        apply_fault(FaultSpec(kind=MEMORY_HOG, index=0, mb=1), in_worker=False)

    def test_corrupt_trace_is_a_pre_task_noop(self):
        from repro.core.faults import CORRUPT_TRACE

        apply_fault(FaultSpec(kind=CORRUPT_TRACE, index=0), in_worker=False)

    def test_parse_fifth_arg_is_mb_for_memory_hog(self):
        from repro.core.faults import DISK_FULL, MEMORY_HOG

        plan = parse_fault_plan(
            "fuzz:0:memory_hog:1:128,fuzz:1:hang:1:0.25,record:2:disk_full"
        )
        assert plan.at("fuzz", 0) == FaultSpec(
            kind=MEMORY_HOG, index=0, attempts=1, mb=128.0
        )
        assert plan.at("fuzz", 1).delay == 0.25
        assert plan.at("record", 2).kind == DISK_FULL


class TestCorruptTraceFile:
    def test_truncates_the_footer(self, tmp_path):
        from repro.core.faults import corrupt_trace_file

        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"kind":"header"}\n{"e":1}\n{"kind":"footer"}\n')
        assert corrupt_trace_file(str(path))
        assert path.read_bytes() == b'{"kind":"header"}\n{"e":1}\n'

    def test_unreadable_path_degrades_to_noop(self, tmp_path):
        from repro.core.faults import corrupt_trace_file

        assert not corrupt_trace_file(str(tmp_path / "absent.jsonl"))

    def test_single_line_file_left_alone(self, tmp_path):
        from repro.core.faults import corrupt_trace_file

        path = tmp_path / "one.jsonl"
        path.write_bytes(b'{"kind":"header"}\n')
        assert not corrupt_trace_file(str(path))
        assert path.read_bytes() == b'{"kind":"header"}\n'

    def test_damages_a_real_trace_detectably(self, tmp_path):
        from repro.core.faults import corrupt_trace_file
        from repro.trace import TraceCorruptError, TraceStore, detect_key, verify_trace
        from repro.workloads import figure1

        path = TraceStore(tmp_path).ensure(
            detect_key("figure1", 0, max_steps=10_000), figure1.build()
        )
        assert corrupt_trace_file(str(path))
        with pytest.raises(TraceCorruptError):
            verify_trace(path)
