"""Interleaving rendering for replay debugging."""

from repro.core.replay import replay_race
from repro.core.traceview import format_replay, format_trace
from repro.runtime import EventTrace, Execution, Program, SharedVar, Lock, ops
from repro.core import RandomScheduler
from repro.workloads import figure1


def _traced_run():
    trace = EventTrace()

    def make():
        x = SharedVar("x", 0)
        lock = Lock("L")

        def main():
            yield lock.acquire()
            yield x.write(1)
            yield lock.release()
            yield x.read()

        return main()

    Execution(Program(make), observers=[trace]).run(RandomScheduler())
    return trace.events


class TestFormatTrace:
    def test_contains_core_rows(self):
        text = format_trace(_traced_run())
        assert "start main#0" in text
        assert "acquire L" in text
        assert "write x" in text
        assert "{L}" in text  # lockset shown while held
        assert "release L" in text
        assert "read x" in text
        assert "end" in text

    def test_messages_hidden_by_default(self):
        events = _traced_run()
        assert "snd" not in format_trace(events)
        assert "snd" in format_trace(events, show_messages=True)

    def test_truncation(self):
        events = _traced_run()
        text = format_trace(events, max_events=2)
        assert "truncated" in text

    def test_truncation_accounting_is_accurate(self):
        """The note must count displayable rows only: filtered SND/RCV
        bookkeeping rows are reported separately, never as 'hidden'."""
        from repro.runtime.events import RcvEvent, SndEvent

        events = _traced_run()
        rows = [e for e in events if not isinstance(e, (SndEvent, RcvEvent))]
        filtered = len(events) - len(rows)
        text = format_trace(events, max_events=2)
        assert f"showing 2 of {len(rows)} events" in text
        assert f"{len(rows) - 2} hidden" in text
        if filtered:
            assert f"({filtered} SND/RCV rows filtered)" in text

    def test_no_truncation_note_when_everything_shown(self):
        events = _traced_run()
        assert "truncated" not in format_trace(events, max_events=len(events))

    def test_columns_per_thread(self):
        run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=2)
        text = format_trace(run.events)
        header = text.splitlines()[0]
        assert "T0" in header and "T1" in header and "T2" in header


class TestFormatReplay:
    def test_highlights_racing_pair(self):
        run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=2)
        text = format_replay(run, pair=figure1.REAL_PAIR)
        assert ">>" in text
        assert "races created: 1" in text
        assert "result:" in text

    def test_crash_rendered(self):
        for seed in range(20):
            run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=seed)
            if run.outcome.crashes:
                text = format_replay(run, pair=figure1.REAL_PAIR)
                assert "AssertionViolation" in text
                return
        raise AssertionError("no crashing seed found in 20")


class TestFormatTraceFile:
    def test_renders_from_recorded_trace(self, tmp_path):
        from repro.core.traceview import format_trace_file
        from repro.trace import TraceStore, detect_key

        path = TraceStore(tmp_path).ensure(
            detect_key("figure1", 0, max_steps=10_000), figure1.build()
        )
        text = format_trace_file(path)
        assert "trace: figure1 seed=0" in text
        assert "T0" in text.splitlines()[2]  # interleaving header row
        assert "result: steps=" in text

    def test_same_rendering_as_live_events(self, tmp_path):
        from repro.core.traceview import format_trace_file
        from repro.runtime import EventTrace
        from repro.trace import record_execution

        witness = EventTrace()
        record_execution(
            figure1.build(),
            RandomScheduler(preemption="every"),
            path=tmp_path / "t.jsonl",
            seed=0,
            max_steps=10_000,
            observers=[witness],
        )
        assert format_trace(witness.events) in format_trace_file(tmp_path / "t.jsonl")
