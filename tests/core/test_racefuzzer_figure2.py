"""Experiment E7: the Section 3.2 probability claims on Figure 2."""

import pytest

from repro.core import RandomScheduler, fuzz_pair
from repro.harness.figure2_prob import measure_point
from repro.runtime import Execution
from repro.workloads import figure2

RUNS = 50


class TestRaceFuzzerProbability:
    @pytest.mark.parametrize("padding", [0, 5, 25])
    def test_race_created_with_probability_one(self, padding):
        outcomes = fuzz_pair(
            figure2.build(padding), figure2.RACING_PAIR, seeds=range(RUNS)
        )
        assert all(outcome.created for outcome in outcomes)

    @pytest.mark.parametrize("padding", [0, 25])
    def test_error_reached_in_about_half_the_runs(self, padding):
        outcomes = fuzz_pair(
            figure2.build(padding), figure2.RACING_PAIR, seeds=range(RUNS)
        )
        errors = sum(1 for o in outcomes if o.crashes)
        assert RUNS * 0.25 <= errors <= RUNS * 0.75

    def test_probability_independent_of_padding(self):
        small = measure_point(2, runs=40)
        large = measure_point(40, runs=40)
        assert small.rf_race_probability == large.rf_race_probability == 1.0


class TestPassiveSchedulerDecay:
    def test_simple_random_error_rate_decays_with_padding(self):
        def error_rate(padding, runs=150):
            errors = 0
            for seed in range(runs):
                result = Execution(figure2.build(padding), seed=seed).run(
                    RandomScheduler(preemption="every")
                )
                errors += bool(result.crashes)
            return errors / runs

        near = error_rate(0)
        far = error_rate(16)
        assert near > far, (near, far)
        assert far < 0.05  # essentially never for long padding

    def test_racefuzzer_beats_passive_at_long_padding(self):
        padding = 16
        point = measure_point(padding, runs=40)
        assert point.rf_race_probability == 1.0
        assert point.rf_error_probability > 0.25
        assert point.simple_error_probability < point.rf_error_probability
