"""Passive schedulers: randomness ownership, preemption modes, quantum."""

import pytest

from repro.core import DefaultScheduler, RandomScheduler, SCHEDULERS
from repro.runtime import (
    EventTrace,
    Execution,
    MemEvent,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)


def _two_writer_program():
    x = SharedVar("x", 0)

    def writer(k):
        for _ in range(5):
            yield x.write(k)

    def main():
        handles = yield from spawn_all([lambda: writer(1), lambda: writer(2)])
        yield from join_all(handles)

    return main()


def _mem_tid_sequence(scheduler_factory, seed):
    trace = EventTrace()
    Execution(Program(_two_writer_program), seed=seed, observers=[trace]).run(
        scheduler_factory()
    )
    return [event.tid for event in trace.of_type(MemEvent)]


class TestRandomScheduler:
    def test_rejects_unknown_preemption(self):
        with pytest.raises(ValueError):
            RandomScheduler(preemption="sometimes")

    def test_every_mode_interleaves_on_some_seed(self):
        sequences = {tuple(_mem_tid_sequence(RandomScheduler, s)) for s in range(10)}
        assert len(sequences) > 1
        interleaved = any(
            any(a != b for a, b in zip(seq, seq[1:]))
            for seq in sequences
        )
        assert interleaved

    def test_sync_mode_runs_bursts_between_sync_ops(self):
        """With sync-only preemption a thread's plain memory ops form
        uninterrupted bursts."""

        def factory():
            return _two_writer_program()

        for seed in range(5):
            trace = EventTrace()
            Execution(Program(factory), seed=seed, observers=[trace]).run(
                RandomScheduler(preemption="sync")
            )
            tids = [event.tid for event in trace.of_type(MemEvent)]
            # Each writer's five writes are contiguous: exactly one switch.
            switches = sum(1 for a, b in zip(tids, tids[1:]) if a != b)
            assert switches == 1, f"seed {seed}: {tids}"

    def test_seed_determinism_through_execution_rng(self):
        assert _mem_tid_sequence(RandomScheduler, 7) == _mem_tid_sequence(
            RandomScheduler, 7
        )


class TestDefaultScheduler:
    def test_deterministic(self):
        assert _mem_tid_sequence(DefaultScheduler, 0) == _mem_tid_sequence(
            DefaultScheduler, 1
        )

    def test_run_to_block_serializes_writers(self):
        tids = _mem_tid_sequence(DefaultScheduler, 0)
        # FIFO run-to-completion: all of thread 1, then all of thread 2.
        assert tids == [1] * 5 + [2] * 5

    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError):
            DefaultScheduler(quantum=0)

    def test_quantum_preempts_spinners(self):
        """A busy-polling thread must not starve the writer it waits for."""

        def factory():
            flag = SharedVar("flag", 0)

            def spinner():
                while (yield flag.read()) == 0:
                    yield ops.yield_point()

            def setter():
                yield flag.write(1)

            def main():
                a = yield ops.spawn(spinner)
                b = yield ops.spawn(setter)
                yield ops.join(a)
                yield ops.join(b)

            return main()

        result = Execution(Program(factory), max_steps=10_000).run(
            DefaultScheduler(quantum=10)
        )
        assert not result.truncated
        assert not result.deadlock


class TestRegistry:
    def test_scheduler_registry(self):
        assert set(SCHEDULERS) == {"random", "default"}
        assert SCHEDULERS["random"] is RandomScheduler
