"""RAPOS: correctness of the independent-batch sampler and the paper's
comparison claim (RaceFuzzer finds error-prone schedules RAPOS misses)."""

from repro.core import RaposDriver, fuzz_pair, rapos_exceptions
from repro.core.rapos import _dependent
from repro.runtime import Lock, Program, SharedVar, join_all, ops, spawn_all
from repro.runtime.location import VarLoc, fresh_uid
from repro.workloads import figure1, figure2


class TestDependence:
    def test_conflicting_accesses_depend(self):
        loc = VarLoc(fresh_uid(), "x")
        assert _dependent(ops.write(loc, 1), ops.read(loc))
        assert _dependent(ops.write(loc, 1), ops.write(loc, 2))
        assert not _dependent(ops.read(loc), ops.read(loc))

    def test_distinct_locations_independent(self):
        a, b = VarLoc(fresh_uid(), "a"), VarLoc(fresh_uid(), "b")
        assert not _dependent(ops.write(a, 1), ops.write(b, 1))

    def test_same_lock_depends(self):
        lock = Lock("L")
        assert _dependent(ops.lock(lock.id), ops.lock(lock.id))
        assert _dependent(ops.lock(lock.id), ops.unlock(lock.id))
        other = Lock("M")
        assert not _dependent(ops.lock(lock.id), ops.lock(other.id))

    def test_structural_ops_depend_on_everything(self):
        loc = VarLoc(fresh_uid(), "x")

        def body():
            yield ops.yield_point()

        assert _dependent(ops.spawn(body), ops.read(loc))
        assert _dependent(ops.join(1), ops.read(loc))


class TestRaposExecution:
    def test_runs_programs_to_completion(self):
        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def worker():
                for _ in range(3):
                    yield lock.acquire()
                    value = yield x.read()
                    yield x.write(value + 1)
                    yield lock.release()

            def main():
                handles = yield from spawn_all([worker, worker])
                yield from join_all(handles)
                total = yield x.read()
                yield ops.check(total == 6, f"lost {6 - total}")

            return main()

        driver = RaposDriver()
        for seed in range(10):
            result = driver.run(Program(factory), seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"
            assert not result.truncated

    def test_replay_determinism(self):
        driver = RaposDriver()

        def signature(seed):
            result = driver.run(figure1.build(), seed=seed)
            return (result.steps, tuple(result.exception_types))

        for seed in range(6):
            assert signature(seed) == signature(seed)

    def test_figure1_terminates_all_seeds(self):
        driver = RaposDriver()
        for seed in range(20):
            result = driver.run(figure1.build(), seed=seed)
            assert not result.deadlock
            assert not result.truncated


class TestPaperComparison:
    def test_racefuzzer_beats_rapos_on_figure2(self):
        """The Related-Work claim, measured: on the padded Figure 2 program
        RAPOS (passive, partial-order-uniform) rarely reaches ERROR while
        RaceFuzzer reaches it in about half the runs."""
        padding = 16
        runs = 60
        rapos = rapos_exceptions(figure2.build(padding), runs=runs)
        rapos_rate = rapos.get("AssertionViolation", 0) / runs
        directed = fuzz_pair(
            figure2.build(padding), figure2.RACING_PAIR, seeds=range(runs)
        )
        directed_rate = sum(1 for o in directed if o.crashes) / runs
        assert directed_rate >= 0.25
        assert rapos_rate < directed_rate
