"""The parallel campaign engine: determinism, chunking, early exit.

The contract under test is the ISSUE/paper claim: trials are independent
seeded runs, so fanning a campaign out over a process pool must yield a
``CampaignReport`` whose per-pair verdict aggregates are identical to the
serial run for the same seed set — for any jobs count and any chunking.
"""

import pickle

import pytest

from repro.core import (
    DetectTask,
    FuzzTask,
    ParallelCampaign,
    chunk_ranges,
    detect_races,
    fuzz_races,
    race_directed_test,
)
from repro.core.parallel import run_detect_task, run_fuzz_task
from repro.runtime import Program
from repro.workloads import figure1


def _verdict_signature(verdict):
    """Everything deterministic in a verdict (wall-clock is measured)."""
    return (
        verdict.trials,
        verdict.times_created,
        dict(verdict.exceptions),
        dict(verdict.unattributed_exceptions),
        verdict.deadlocks,
        verdict.truncated,
        verdict.created_pairs,
    )


def _campaign_signature(campaign):
    return (
        campaign.program,
        [str(p) for p in campaign.phase1.pairs],
        {str(p): _verdict_signature(v) for p, v in campaign.verdicts.items()},
    )


class TestTaskSpecs:
    def test_tasks_are_picklable(self):
        for task in (
            DetectTask(workload="figure1", seed=3),
            FuzzTask(workload="figure1", pair=figure1.REAL_PAIR, seed_start=5, count=4),
        ):
            assert pickle.loads(pickle.dumps(task)) == task

    def test_worker_results_are_picklable(self):
        report = run_detect_task(DetectTask(workload="figure1"))
        verdict = run_fuzz_task(
            FuzzTask(workload="figure1", pair=figure1.REAL_PAIR, count=3)
        )
        assert pickle.loads(pickle.dumps(report)).pairs == report.pairs
        assert _verdict_signature(pickle.loads(pickle.dumps(verdict))) == (
            _verdict_signature(verdict)
        )

    def test_chunk_ranges_cover_exactly_once(self):
        ranges = chunk_ranges(base_seed=7, trials=23, chunk_size=5)
        seeds = [s for start, count in ranges for s in range(start, start + count)]
        assert seeds == list(range(7, 30))

    def test_chunk_ranges_reject_bad_size(self):
        with pytest.raises(ValueError):
            chunk_ranges(0, 10, 0)


class TestDetectEquivalence:
    def test_parallel_detect_matches_serial(self):
        serial = detect_races(figure1.build(), seeds=range(5))
        parallel = detect_races(figure1.build(), seeds=range(5), jobs=4)
        assert serial.pairs == parallel.pairs
        assert {
            str(p): (e.count, e.both_write) for p, e in serial.evidence.items()
        } == {
            str(p): (e.count, e.both_write) for p, e in parallel.evidence.items()
        }
        assert serial.truncated_locations == parallel.truncated_locations


class TestFuzzEquivalence:
    PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]

    def test_jobs_1_vs_jobs_4_identical_aggregates(self):
        serial = fuzz_races(figure1.build(), self.PAIRS, trials=8)
        parallel = fuzz_races(
            figure1.build(), self.PAIRS, trials=8, jobs=4, chunk_size=3
        )
        assert set(serial) == set(parallel)
        for pair in serial:
            assert _verdict_signature(serial[pair]) == _verdict_signature(
                parallel[pair]
            )

    def test_chunking_is_deterministic(self):
        fine = fuzz_races(
            figure1.build(), self.PAIRS, trials=10, jobs=2, chunk_size=1
        )
        coarse = fuzz_races(
            figure1.build(), self.PAIRS, trials=10, jobs=2, chunk_size=10
        )
        for pair in fine:
            assert _verdict_signature(fine[pair]) == _verdict_signature(
                coarse[pair]
            )

    def test_base_seed_respected_in_parallel(self):
        serial = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=6, base_seed=100
        )
        parallel = fuzz_races(
            figure1.build(),
            [figure1.REAL_PAIR],
            trials=6,
            base_seed=100,
            jobs=2,
            chunk_size=2,
        )
        assert _verdict_signature(serial[figure1.REAL_PAIR]) == (
            _verdict_signature(parallel[figure1.REAL_PAIR])
        )


class TestCampaignEquivalence:
    def test_full_campaign_matches_serial(self):
        serial = race_directed_test(figure1.build(), trials=8)
        parallel = race_directed_test(
            figure1.build(), trials=8, jobs=4, chunk_size=3
        )
        assert _campaign_signature(serial) == _campaign_signature(parallel)

    def test_unregistered_program_rejected_for_parallel(self):
        def factory():
            def main():
                yield from ()

            return main()

        with pytest.raises(ValueError, match="not in"):
            race_directed_test(Program(factory, name="anonymous"), jobs=2)


class TestStopOnConfirm:
    def test_serial_early_exit_stops_at_first_confirmation(self):
        # figure1's real pair is created with probability 1, so the first
        # trial confirms it and the remaining 49 are skipped.
        verdicts = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=50, stop_on_confirm=True
        )
        assert verdicts[figure1.REAL_PAIR].is_real
        assert verdicts[figure1.REAL_PAIR].trials == 1

    def test_false_pair_still_gets_all_trials(self):
        verdicts = fuzz_races(
            figure1.build(), [figure1.FALSE_PAIR], trials=10, stop_on_confirm=True
        )
        assert not verdicts[figure1.FALSE_PAIR].is_real
        assert verdicts[figure1.FALSE_PAIR].trials == 10

    def test_parallel_early_exit_preserves_classification(self):
        verdicts = fuzz_races(
            figure1.build(),
            [figure1.REAL_PAIR, figure1.FALSE_PAIR],
            trials=20,
            jobs=2,
            chunk_size=5,
            stop_on_confirm=True,
        )
        assert verdicts[figure1.REAL_PAIR].is_real
        assert verdicts[figure1.REAL_PAIR].trials <= 20
        assert not verdicts[figure1.FALSE_PAIR].is_real
        assert verdicts[figure1.FALSE_PAIR].trials == 20


class TestParallelCampaignObject:
    def test_run_end_to_end_by_name(self):
        with ParallelCampaign(jobs=2, chunk_size=4) as engine:
            campaign = engine.run("figure1", trials=8)
        assert campaign.program == "figure1"
        assert figure1.REAL_PAIR in campaign.real_pairs
        assert figure1.FALSE_PAIR not in campaign.real_pairs

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelCampaign(jobs=-1)
        with pytest.raises(ValueError):
            ParallelCampaign(chunk_size=0)

    def test_close_is_idempotent(self):
        engine = ParallelCampaign(jobs=2)
        engine.close()
        engine.close()
