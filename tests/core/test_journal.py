"""CheckpointJournal recovery: torn lines, duplicates, compaction.

A journal is only as good as its failure story: a campaign killed
mid-write leaves a torn line, a resumed campaign appends duplicate keys,
and both must be survivable *and visible* (ISSUE 7, satellite S2/S3).
"""

import json

from repro.core.supervisor import CheckpointJournal
from repro.obs import collecting


def _journal(tmp_path, lines):
    path = tmp_path / "journal.jsonl"
    path.write_text("".join(lines))
    return CheckpointJournal(path), path


def _record(key, result):
    return json.dumps({"key": key, "result": result}) + "\n"


class TestLoad:
    def test_missing_file_loads_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "absent.jsonl")
        assert journal.load() == {}
        assert journal.skipped_lines == 0

    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.append("a", 1)
        journal.append("b", {"x": [1, 2]})
        journal.close()
        assert journal.load() == {"a": 1, "b": {"x": [1, 2]}}
        assert journal.skipped_lines == 0

    def test_torn_trailing_line_skipped(self, tmp_path):
        journal, _ = _journal(
            tmp_path, [_record("a", 1), '{"key": "b", "resu'],
        )
        assert journal.load(quiet=True) == {"a": 1}
        assert journal.skipped_lines == 1

    def test_torn_mid_file_line_skipped_both_sides_survive(self, tmp_path):
        journal, _ = _journal(
            tmp_path,
            [_record("a", 1), "garbage not json\n", _record("b", 2)],
        )
        assert journal.load(quiet=True) == {"a": 1, "b": 2}
        assert journal.skipped_lines == 1

    def test_parseable_non_record_lines_are_skipped(self, tmp_path):
        journal, _ = _journal(
            tmp_path, [_record("a", 1), '["not", "a", "record"]\n', '{"no": "key"}\n'],
        )
        assert journal.load(quiet=True) == {"a": 1}
        assert journal.skipped_lines == 2

    def test_duplicate_keys_last_wins(self, tmp_path):
        journal, _ = _journal(
            tmp_path, [_record("a", 1), _record("b", 5), _record("a", 2)],
        )
        assert journal.load(quiet=True) == {"a": 2, "b": 5}

    def test_blank_lines_are_not_counted_as_torn(self, tmp_path):
        journal, _ = _journal(tmp_path, [_record("a", 1), "\n", "\n"])
        assert journal.load(quiet=True) == {"a": 1}
        assert journal.skipped_lines == 0


class TestVisibility:
    def test_skips_land_in_the_metric(self, tmp_path):
        journal, _ = _journal(tmp_path, [_record("a", 1), "torn{"])
        with collecting() as registry:
            journal.load(quiet=True)
        assert registry.snapshot().counters["supervisor.journal_skipped"] == 1

    def test_skips_print_a_recovery_note(self, tmp_path, capsys):
        journal, _ = _journal(tmp_path, ["torn{\n", "more torn{"])
        journal.load()
        err = capsys.readouterr().err
        assert "skipped 2 torn/malformed line(s)" in err

    def test_quiet_load_stays_silent(self, tmp_path, capsys):
        journal, _ = _journal(tmp_path, ["torn{"])
        journal.load(quiet=True)
        assert capsys.readouterr().err == ""

    def test_clean_load_prints_nothing(self, tmp_path, capsys):
        journal, _ = _journal(tmp_path, [_record("a", 1)])
        journal.load()
        assert capsys.readouterr().err == ""


class TestCompact:
    def test_compaction_round_trip(self, tmp_path):
        journal, path = _journal(
            tmp_path,
            [
                _record("a", 1),
                "torn line{\n",
                _record("b", 5),
                _record("a", 2),  # supersedes the first "a"
            ],
        )
        before = journal.load(quiet=True)
        dropped = journal.compact()
        assert dropped == 2  # the torn line + the superseded duplicate
        after = journal.load(quiet=True)
        assert after == before == {"a": 2, "b": 5}
        assert journal.skipped_lines == 0
        # One well-formed line per key, nothing else.
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2
        assert all("key" in json.loads(l) for l in lines)

    def test_compact_missing_file_is_a_noop(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.jsonl").compact() == 0

    def test_compact_is_appendable_afterwards(self, tmp_path):
        journal, _ = _journal(tmp_path, [_record("a", 1), "torn{"])
        journal.compact()
        journal.append("b", 2)
        journal.close()
        assert journal.load(quiet=True) == {"a": 1, "b": 2}

    def test_compact_leaves_no_temp_files(self, tmp_path):
        journal, path = _journal(tmp_path, [_record("a", 1), "torn{"])
        journal.compact()
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
