"""The two-phase pipeline: detect_races, fuzz_races, race_directed_test."""

import pytest

from repro.core import (
    baseline_exceptions,
    detect_races,
    fuzz_races,
    race_directed_test,
)
from repro.runtime import Program, SharedVar, join_all, ops, spawn_all
from repro.runtime.statement import Statement, StatementPair
from repro.workloads import figure1


class TestDetectRaces:
    def test_multiple_seeds_union_findings(self):
        single = detect_races(figure1.build(), seeds=(0,))
        multi = detect_races(figure1.build(), seeds=range(6))
        assert set(single.pairs) <= set(multi.pairs)

    def test_detector_selection(self):
        hybrid = detect_races(figure1.build(), seeds=(0,), detector="hybrid")
        lockset = detect_races(figure1.build(), seeds=(0,), detector="lockset")
        hb = detect_races(figure1.build(), seeds=(0,), detector="happens-before")
        assert hybrid.detector == "hybrid"
        assert lockset.detector == "lockset"
        assert hb.detector == "happens-before"

    def test_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            detect_races(figure1.build(), detector="psychic")

    def test_needs_at_least_one_seed(self):
        with pytest.raises(AssertionError):
            detect_races(figure1.build(), seeds=())


class TestFuzzRaces:
    def test_verdict_per_pair_with_requested_trials(self):
        pairs = [figure1.REAL_PAIR, figure1.FALSE_PAIR]
        verdicts = fuzz_races(figure1.build(), pairs, trials=9)
        assert set(verdicts) == set(pairs)
        assert all(v.trials == 9 for v in verdicts.values())

    def test_base_seed_shifts_runs(self):
        verdicts_a = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=5, base_seed=0
        )
        verdicts_b = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=5, base_seed=1000
        )
        # Both confirm the race (robustness across seed ranges).
        assert verdicts_a[figure1.REAL_PAIR].is_real
        assert verdicts_b[figure1.REAL_PAIR].is_real


class TestRaceDirectedTest:
    def test_supplied_pairs_skip_phase1(self):
        campaign = race_directed_test(
            figure1.build(), pairs=[figure1.REAL_PAIR], trials=10
        )
        assert campaign.potential_pairs == 1
        assert campaign.phase1.detector == "supplied"
        assert campaign.real_pairs == [figure1.REAL_PAIR]

    def test_str_rendering(self):
        campaign = race_directed_test(
            figure1.build(), pairs=[figure1.REAL_PAIR], trials=5
        )
        text = str(campaign)
        assert "figure1" in text and "1 real" in text

    def test_phase1_pairs_flow_into_phase2(self):
        campaign = race_directed_test(figure1.build(), trials=5)
        assert set(campaign.verdicts) == set(campaign.phase1.pairs)


class TestBaselineExceptions:
    def test_counts_exception_types(self):
        def factory():
            def main():
                yield ops.check(False, "always")

            return main()

        counts = baseline_exceptions(Program(factory), runs=5)
        assert counts["AssertionViolation"] == 5

    def test_deadlock_counted_separately(self):
        from repro.runtime import Lock

        def factory():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                yield lock.wait()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.join(handle)

            return main()

        counts = baseline_exceptions(Program(factory), runs=3)
        assert counts["Deadlock"] == 3

    def test_scheduler_choices(self):
        def factory():
            def main():
                yield ops.yield_point()

            return main()

        for scheduler in ("default", "random", "random-sync"):
            counts = baseline_exceptions(
                Program(factory), runs=2, scheduler=scheduler
            )
            assert not counts

    def test_unknown_scheduler_raises(self):
        def factory():
            def main():
                yield ops.yield_point()

            return main()

        with pytest.raises(ValueError):
            baseline_exceptions(Program(factory), runs=1, scheduler="magic")


class TestBaselineExceptionsParallel:
    """The satellite fix: baseline_exceptions takes jobs/deadline/retries."""

    def test_parallel_matches_serial(self):
        serial = baseline_exceptions(
            figure1.build(), runs=24, scheduler="random", max_steps=20_000
        )
        parallel = baseline_exceptions(
            figure1.build(),
            runs=24,
            scheduler="random",
            max_steps=20_000,
            jobs=2,
            chunk_size=7,
        )
        assert serial == parallel

    def test_supervised_path_at_jobs_1(self):
        supervised = baseline_exceptions(
            figure1.build(),
            runs=12,
            scheduler="random",
            max_steps=20_000,
            retries=0,
        )
        plain = baseline_exceptions(
            figure1.build(), runs=12, scheduler="random", max_steps=20_000
        )
        assert supervised == plain

    def test_parallel_requires_registered_workload(self):
        def factory():
            def main():
                yield ops.yield_point()

            return main()

        with pytest.raises(ValueError, match="registered workload"):
            baseline_exceptions(Program(factory), runs=1, jobs=2)

    def test_unknown_scheduler_rejected_before_dispatch(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            baseline_exceptions(figure1.build(), runs=1, scheduler="magic", jobs=2)


class TestPipelineOnLostUpdateProgram:
    """A miniature end-to-end: racy counter -> detect -> fuzz -> classify."""

    @staticmethod
    def _factory():
        x = SharedVar("x", 0)
        total = SharedVar("total", 0)

        def racy():
            value = yield x.read(label="r")
            yield x.write(value + 1, label="w")

        def safe():
            yield total.read()

        def main():
            handles = yield from spawn_all([racy, racy, safe])
            yield from join_all(handles)

        return main()

    def test_end_to_end(self):
        program = Program(self._factory, name="mini")
        campaign = race_directed_test(program, trials=30, phase1_seeds=range(4))
        pair_rw = StatementPair(Statement(label="r"), Statement(label="w"))
        pair_ww = StatementPair(Statement(label="w"), Statement(label="w"))
        assert set(campaign.phase1.pairs) == {pair_rw, pair_ww}
        assert set(campaign.real_pairs) == {pair_rw, pair_ww}
        assert campaign.harmful_pairs == []
        assert campaign.mean_probability() > 0.9
