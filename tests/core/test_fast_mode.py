"""Fast mode: verdict/schedule equivalence and allocation-free emission.

Fast mode (``fast_mode=True`` on the Phase-2 drivers) suppresses MemEvent
emission for statements outside the racing set.  Two properties are
load-bearing:

* **Verdict neutrality** — schedules, hits, crashes and deadlocks are
  byte-identical to full mode for the same seed: the filter sits strictly
  on the observer side of the engine, and the postponing loop reads ops
  and statements directly, never through events.
* **Allocation-free emission** — with no observer attached (the Phase-2
  worker configuration) the engine constructs *zero* event objects.  The
  steps/sec figures in BENCH_engine.json rest on this, so it gets a
  regression test rather than a benchmark-only check.
"""

from collections import Counter

import pytest

from repro.core import RaceFuzzer, detect_races, race_directed_test
from repro.obs import collecting
from repro.runtime import Lock, SharedVar, join_all, ops, spawn_all
from repro.runtime import interpreter as interp_mod
from repro.runtime.events import MemEvent
from repro.runtime.interpreter import Execution
from repro.runtime.observer import ExecutionObserver
from repro.runtime.program import Program
from repro.runtime.statement import Statement, StatementPair
from repro.core.schedulers import RandomScheduler
from repro.workloads import figure1, figure2

SEEDS = range(8)

WORKLOADS = [
    pytest.param(figure1.build, id="figure1"),
    pytest.param(lambda: figure2.build(padding=3), id="figure2"),
]


class RecordingObserver(ExecutionObserver):
    """Collects every delivered event; optionally declines MemEvents."""

    def __init__(self, wants_mem: bool = True):
        self.wants_mem_events = wants_mem
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def _fingerprint(outcome):
    """Everything a verdict is built from, plus the schedule length."""
    result = outcome.result
    return (
        result.steps,
        result.deadlock,
        tuple(result.deadlocked_tids),
        result.truncated,
        tuple((c.tid, c.step, c.error.type) for c in result.crashes),
        tuple(outcome.hits),
        frozenset(outcome.pairs_created),
        outcome.postpones,
        outcome.coin_flips,
        outcome.forced_releases,
        outcome.watchdog_releases,
    )


class TestFastModeEquivalence:
    @pytest.mark.parametrize("build", WORKLOADS)
    def test_per_seed_outcomes_identical(self, build):
        """Fast mode must not change a single trial outcome on any seed."""
        pairs = detect_races(build(), seeds=(0, 1)).pairs
        assert pairs, "workload must yield at least one racing pair"
        for pair in pairs:
            full = RaceFuzzer(pair, max_steps=50_000)
            fast = RaceFuzzer(pair, max_steps=50_000, fast_mode=True)
            for seed in SEEDS:
                assert _fingerprint(full.run(build(), seed=seed)) == _fingerprint(
                    fast.run(build(), seed=seed)
                ), f"fast mode diverged for {pair} at seed {seed}"

    @pytest.mark.parametrize("build", WORKLOADS)
    def test_campaign_verdicts_identical(self, build):
        """End-to-end: the campaign report is the same in either mode."""

        def campaign(fast_mode):
            return race_directed_test(
                build(), trials=10, phase1_seeds=(0, 1), fast_mode=fast_mode
            )

        full, fast = campaign(False), campaign(True)
        assert set(full.verdicts) == set(fast.verdicts)
        for pair, verdict in full.verdicts.items():
            other = fast.verdicts[pair]
            assert (
                verdict.trials,
                verdict.times_created,
                verdict.exceptions,
                verdict.unattributed_exceptions,
                verdict.deadlocks,
            ) == (
                other.trials,
                other.times_created,
                other.exceptions,
                other.unattributed_exceptions,
                other.deadlocks,
            )


def _filter_program():
    """Racing pair plus plenty of off-pair memory traffic to filter."""

    def make():
        x = SharedVar("x", 0)
        y = SharedVar("y", 0)
        lock = Lock("L")

        def writer():
            for _ in range(5):
                yield y.write(1, label="noise-w")
            yield lock.acquire(label="acq")
            yield x.write(1, label="racy-w")
            yield lock.release(label="rel")
            yield y.read(label="noise-r")

        def reader():
            for _ in range(5):
                yield y.write(2, label="noise-w2")
            yield x.read(label="racy-r")

        def main():
            threads = yield from spawn_all([writer, reader], prefix="t")
            yield from join_all(threads)

        return main()

    return Program(make, name="fastmode-filter")


_FILTER_PAIR = StatementPair(
    Statement(label="racy-w"), Statement(label="racy-r")
)


def _normalize(event):
    """Cross-run comparison key: Location/LockId uids are per-process, so
    compare events by their stable parts (kind, step, tid, stmt, names)."""
    key = [type(event).__name__, event.step, event.tid]
    for attr in ("stmt", "access", "child", "name", "msg_id", "blocked"):
        if hasattr(event, attr):
            key.append(getattr(event, attr))
    for attr in ("location", "lock"):
        value = getattr(event, attr, None)
        if value is not None:
            key.append(getattr(value, "name", str(value)))
    return tuple(key)


class TestFastModeFiltering:
    def _run(self, *, fast_mode, wants_mem=True, seed=3):
        observer = RecordingObserver(wants_mem=wants_mem)
        fuzzer = RaceFuzzer(
            _FILTER_PAIR,
            observers=[observer],
            fast_mode=fast_mode,
            max_steps=50_000,
        )
        outcome = fuzzer.run(_filter_program(), seed=seed)
        return observer.events, outcome

    def test_fast_mode_mem_events_only_from_race_set(self):
        events, _ = self._run(fast_mode=True)
        mem = [e for e in events if isinstance(e, MemEvent)]
        assert mem, "the racing statements themselves must still emit"
        assert all(e.stmt in _FILTER_PAIR for e in mem)

    def test_full_mode_is_a_superset_and_sync_events_unchanged(self):
        full_events, _ = self._run(fast_mode=False)
        fast_events, _ = self._run(fast_mode=True)
        full_mem = [_normalize(e) for e in full_events if isinstance(e, MemEvent)]
        fast_mem = [_normalize(e) for e in fast_events if isinstance(e, MemEvent)]
        assert len(fast_mem) < len(full_mem)
        assert set(fast_mem) <= set(full_mem)
        # Everything that is not a MemEvent is identical, in order.
        strip = lambda events: [
            _normalize(e) for e in events if not isinstance(e, MemEvent)
        ]
        assert strip(fast_events) == strip(full_events)

    def test_filter_irrelevant_when_no_observer_wants_mem(self):
        full_events, _ = self._run(fast_mode=False, wants_mem=False)
        fast_events, _ = self._run(fast_mode=True, wants_mem=False)
        assert not any(isinstance(e, MemEvent) for e in full_events)
        assert list(map(_normalize, full_events)) == list(
            map(_normalize, fast_events)
        )


def _counter_program(iterations=40):
    """Crash-free two-thread counter: plenty of steps, no terminal error."""

    def make():
        x = SharedVar("x", 0)

        def worker():
            for _ in range(iterations):
                value = yield x.read()
                yield x.write(value + 1)

        def main():
            threads = yield from spawn_all([worker, worker], prefix="w")
            yield from join_all(threads)

        return main()

    return Program(make, name="fastmode-counter")


_EVENT_CLASSES = (
    "MemEvent",
    "AcquireEvent",
    "ReleaseEvent",
    "SndEvent",
    "RcvEvent",
    "ThreadStartEvent",
    "ThreadEndEvent",
    "ErrorEvent",
    "DeadlockEvent",
)


class TestAllocationFreeEmission:
    def test_no_event_objects_without_observer(self, monkeypatch):
        """The no-observer engine must construct zero event objects.

        Every event class the interpreter binds is wrapped in a counting
        stub; any constructor call is a fast-path regression (an event
        built just to be thrown away).
        """
        constructions: Counter = Counter()
        for name in _EVENT_CLASSES:
            real = getattr(interp_mod, name)

            def counting(*args, _real=real, _name=name, **kwargs):
                constructions[_name] += 1
                return _real(*args, **kwargs)

            monkeypatch.setattr(interp_mod, name, counting)
        execution = Execution(_counter_program(), seed=0)
        result = execution.run(RandomScheduler(preemption="sync"))
        assert result.steps > 100  # the run actually did work
        assert not result.crashes and not result.deadlock
        assert constructions == Counter(), (
            f"event objects allocated with no observer: {dict(constructions)}"
        )

    def test_fast_mode_run_allocates_no_off_pair_mem_events(self, monkeypatch):
        """With an observer attached, fast mode builds MemEvents only for
        race-set statements — the filter runs *before* construction."""
        constructions: Counter = Counter()
        real_mem = interp_mod.MemEvent

        def counting(*args, **kwargs):
            constructions["MemEvent"] += 1
            return real_mem(*args, **kwargs)

        monkeypatch.setattr(interp_mod, "MemEvent", counting)
        observer = RecordingObserver()
        fuzzer = RaceFuzzer(
            _FILTER_PAIR, observers=[observer], fast_mode=True, max_steps=50_000
        )
        fuzzer.run(_filter_program(), seed=3)
        delivered = sum(1 for e in observer.events if isinstance(e, real_mem))
        assert delivered > 0
        assert constructions["MemEvent"] == delivered

    def test_metrics_still_fold_per_kind_counts(self):
        """Hoisted int-array metrics must fold back into the same
        ``interp.ops.*`` counters, summing exactly to ``interp.steps``."""
        with collecting() as registry:
            execution = Execution(_counter_program(), seed=1)
            execution.run(RandomScheduler(preemption="every"))
        counters = registry.snapshot().counters
        op_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("interp.ops.")
        )
        assert op_total == counters["interp.steps"] > 0
        assert counters["interp.ops.read"] > 0
        assert counters["interp.ops.write"] > 0


class TestWakeMetricsAttribution:
    def test_wake_counted_at_the_waking_step(self):
        """A sleeper's wake step must count as ``wake``, not as the kind of
        the op the thread resumes with (the pre-overhaul miscount)."""

        def make():
            x = SharedVar("x", 0)

            def sleeper():
                yield ops.sleep(3)
                yield x.write(1)

            def main():
                handle = yield ops.spawn(sleeper)
                yield ops.join(handle)

            return main()

        with collecting() as registry:
            execution = Execution(Program(make, name="sleeper"), seed=0)
            execution.run(RandomScheduler(preemption="every"))
        counters = registry.snapshot().counters
        assert counters.get("interp.ops.wake", 0) >= 1
        op_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("interp.ops.")
        )
        assert op_total == counters["interp.steps"]
