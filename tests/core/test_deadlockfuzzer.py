"""Deadlock-directed active testing (the Section 1 generalization)."""

from repro.core import DeadlockFuzzer, RandomScheduler, detect_lock_order_inversions
from repro.runtime import Execution, Lock, Program, join_all, ops, spawn_all


def _inversion_factory(work: int = 6):
    """Lock-order inversion with padding so passive schedules rarely hit it."""

    def factory():
        a, b = Lock("A"), Lock("B")

        def forward():
            yield a.acquire()
            yield b.acquire()  # inner acquire: the dangerous statement
            yield b.release()
            yield a.release()
            for _ in range(work):
                yield ops.yield_point()

        def backward():
            for _ in range(work):
                yield ops.yield_point()
            yield b.acquire()
            yield a.acquire()  # inner acquire, inverted order
            yield a.release()
            yield b.release()

        def main():
            handles = yield from spawn_all([forward, backward])
            yield from join_all(handles)

        return main()

    return Program(factory, name="inversion")


def _well_ordered_factory():
    def factory():
        a, b = Lock("A"), Lock("B")

        def worker():
            yield a.acquire()
            yield b.acquire()
            yield b.release()
            yield a.release()

        def main():
            handles = yield from spawn_all([worker, worker])
            yield from join_all(handles)

        return main()

    return Program(factory, name="ordered")


class TestLockOrderDetection:
    def test_inversion_produces_a_cycle(self):
        report = detect_lock_order_inversions(_inversion_factory(), seeds=range(3))
        assert report.cycles()
        targets = report.target_statements()
        assert len(targets) == 2  # the two inner acquires

    def test_consistent_order_has_no_cycle(self):
        report = detect_lock_order_inversions(_well_ordered_factory(), seeds=range(3))
        assert report.edges  # a->b edges exist
        assert not report.cycles()
        assert not report.target_statements()


class TestDeadlockFuzzer:
    def test_requires_targets(self):
        import pytest

        with pytest.raises(ValueError):
            DeadlockFuzzer(frozenset())

    def test_fuzzer_creates_the_deadlock_reliably(self):
        program = _inversion_factory(work=10)
        targets = detect_lock_order_inversions(program, seeds=range(3)).target_statements()
        fuzzer = DeadlockFuzzer(targets, max_steps=50_000)
        deadlocks = sum(
            fuzzer.run(_inversion_factory(work=10), seed=seed).deadlock
            for seed in range(20)
        )
        assert deadlocks >= 16  # near-certain under direction

    def test_passive_scheduler_rarely_finds_it(self):
        deadlocks = sum(
            Execution(_inversion_factory(work=10), seed=seed)
            .run(RandomScheduler(preemption="every"))
            .deadlock
            for seed in range(20)
        )
        # The inner critical sections are two statements wide; a passive
        # random schedule almost never overlaps them.
        assert deadlocks <= 6

    def test_no_false_deadlocks_on_well_ordered_program(self):
        program = _well_ordered_factory()
        report = detect_lock_order_inversions(program, seeds=range(3))
        # No targets -> nothing to fuzz; fuzz the inner acquire anyway by
        # feeding all acquire statements, and the program must still finish.
        all_stmts = {edge.stmt for edge in report.edges}
        fuzzer = DeadlockFuzzer(all_stmts or {None}, max_steps=50_000)
        if all_stmts:
            outcomes = [
                fuzzer.run(_well_ordered_factory(), seed=seed) for seed in range(10)
            ]
            assert not any(outcome.deadlock for outcome in outcomes)
