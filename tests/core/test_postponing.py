"""The Algorithm 1 main loop: postponement, releases, watchdog, deadlocks."""

from repro.core import RaceFuzzer
from repro.core.postponing import FuzzResult, PostponingDriver
from repro.runtime import (
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.runtime.statement import Statement, StatementPair
import pytest


class TestForcedRelease:
    def test_lone_postponed_thread_is_released_and_completes(self):
        """Figure 1 Case 1: a thread postponed at a racing statement whose
        partner never arrives must be released (line 27) and 'execute the
        remaining statements'."""

        def factory():
            x = SharedVar("x", 0)

            def only():
                yield x.write(1, label="racy")
                yield x.write(2, label="after")

            def main():
                handle = yield ops.spawn(only)
                yield ops.join(handle)

            return main()

        pair = StatementPair(Statement(label="racy"), Statement(label="nowhere"))
        fuzzer = RaceFuzzer(pair, max_steps=10_000)
        outcome = fuzzer.run(Program(factory), seed=0)
        assert not outcome.created
        assert not outcome.result.truncated
        assert not outcome.result.deadlock
        assert outcome.forced_releases >= 1

    def test_release_does_not_permanently_exempt(self):
        """After a forced release executes one statement, a later arrival at
        the racing statement must be postponed again (and can then race)."""

        def factory():
            x = SharedVar("x", 0)

            def repeat_writer():
                for _ in range(5):
                    yield x.write(1, label="w")

            def reader():
                for _ in range(5):
                    yield ops.yield_point()
                yield x.read(label="r")

            def main():
                handles = yield from spawn_all([repeat_writer, reader])
                yield from join_all(handles)

            return main()

        pair = StatementPair(Statement(label="w"), Statement(label="r"))
        created = sum(
            RaceFuzzer(pair, max_steps=10_000).run(Program(factory), seed=s).created
            for s in range(10)
        )
        assert created >= 8  # nearly every run should still create the race


class TestWatchdog:
    def test_watchdog_frees_thread_blocked_behind_spin_loop(self):
        """The moldyn livelock pattern: one thread spins on a flag that only
        the postponed thread can set.  The watchdog must unwedge it."""

        def factory():
            flag = SharedVar("flag", 0)

            def setter():
                yield flag.write(1, label="set-flag")

            def spinner():
                while (yield flag.read()) == 0:
                    yield ops.yield_point()

            def main():
                handles = yield from spawn_all([setter, spinner])
                yield from join_all(handles)

            return main()

        pair = StatementPair(Statement(label="set-flag"), Statement(label="other"))
        fuzzer = RaceFuzzer(pair, patience=100, max_steps=50_000)
        outcome = fuzzer.run(Program(factory), seed=0)
        assert not outcome.result.truncated
        assert not outcome.result.deadlock
        assert outcome.watchdog_releases >= 1


class TestResolution:
    def test_both_resolution_orders_occur_across_seeds(self):
        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(1, label="W")

            def reader():
                yield x.read(label="R")

            def main():
                handles = yield from spawn_all([writer, reader])
                yield from join_all(handles)

            return main()

        pair = StatementPair(Statement(label="W"), Statement(label="R"))
        arrivals = set()
        for seed in range(30):
            outcome = RaceFuzzer(pair).run(Program(factory), seed=seed)
            if outcome.created:
                arrivals.add(outcome.hits[0].executed_arrival)
        assert arrivals == {True, False}

    def test_multiple_readers_in_r_set(self):
        """Algorithm 2: R can contain several postponed readers; resolving
        against them reports one hit per rival."""

        def factory():
            x = SharedVar("x", 0)

            def reader():
                yield x.read(label="R")

            def writer():
                for _ in range(6):
                    yield ops.yield_point()
                yield x.write(1, label="W")

            def main():
                handles = yield from spawn_all([reader, reader, writer])
                yield from join_all(handles)

            return main()

        pair = StatementPair(Statement(label="W"), Statement(label="R"))
        multi = 0
        for seed in range(30):
            outcome = RaceFuzzer(pair).run(Program(factory), seed=seed)
            if len(outcome.hits) >= 2 and len({h.step for h in outcome.hits}) == 1:
                multi += 1
        assert multi >= 1, "never saw a multi-rival resolution"

    def test_same_statement_self_race_detected(self):
        """Two threads at the SAME statement writing one location race."""

        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(1, label="W")

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        stmt = Statement(label="W")
        outcomes = [
            RaceFuzzer(StatementPair(stmt, stmt)).run(Program(factory), seed=s)
            for s in range(10)
        ]
        assert all(o.created for o in outcomes)
        assert all(o.pairs_created == {StatementPair(stmt, stmt)} for o in outcomes)


class TestDriverValidation:
    def test_rejects_bad_preemption(self):
        with pytest.raises(ValueError):
            RaceFuzzer(
                StatementPair(Statement(label="a"), Statement(label="b")),
                preemption="never",
            )

    def test_base_class_hooks_are_abstract(self):
        driver = PostponingDriver()
        with pytest.raises(NotImplementedError):
            driver.is_target(None, 0)
        with pytest.raises(NotImplementedError):
            driver.conflicting(None, 0, [])

    def test_fuzzresult_str(self):
        def factory():
            def main():
                yield ops.yield_point()

            return main()

        pair = StatementPair(Statement(label="a"), Statement(label="b"))
        outcome = RaceFuzzer(pair).run(Program(factory), seed=0)
        assert "0 hit(s)" in str(outcome)
        assert isinstance(outcome, FuzzResult)


class TestDeadlockReporting:
    def test_fuzzer_surfaces_engine_deadlock(self):
        def factory():
            a, b = Lock("A"), Lock("B")

            def forward():
                yield a.acquire()
                yield ops.yield_point()
                yield b.acquire()

            def backward():
                yield b.acquire()
                yield ops.yield_point()
                yield a.acquire()

            def main():
                handles = yield from spawn_all([forward, backward])
                yield from join_all(handles)

            return main()

        pair = StatementPair(Statement(label="x"), Statement(label="y"))
        deadlocked = sum(
            RaceFuzzer(pair).run(Program(factory), seed=s).deadlock
            for s in range(20)
        )
        assert deadlocked == 20  # neither thread ever releases
