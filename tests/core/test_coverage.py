"""Schedule-coverage metrics: signature soundness and strategy comparison."""

from repro.core import (
    RandomScheduler,
    conflict_signature,
    measure_coverage,
)
from repro.runtime import EventTrace, Execution, Lock, Program, SharedVar, join_all, ops, spawn_all
from repro.workloads import figure1


def _trace(program, seed, scheduler=None):
    trace = EventTrace()
    Execution(program, seed=seed, observers=[trace]).run(
        scheduler or RandomScheduler("every")
    )
    return trace.events


class TestConflictSignature:
    def test_identical_runs_identical_signatures(self):
        first = conflict_signature(_trace(figure1.build(), seed=3))
        second = conflict_signature(_trace(figure1.build(), seed=3))
        assert first == second

    def test_signature_ignores_independent_commutes(self):
        """Two threads writing DIFFERENT locations: every interleaving is
        one partial order, so all seeds share one signature."""

        def factory():
            a, b = SharedVar("a", 0), SharedVar("b", 0)

            def writer_a():
                for value in range(3):
                    yield a.write(value)

            def writer_b():
                for value in range(3):
                    yield b.write(value)

            def main():
                handles = yield from spawn_all([writer_a, writer_b])
                yield from join_all(handles)

            return main()

        signatures = {
            conflict_signature(_trace(Program(factory), seed=s)) for s in range(20)
        }
        assert len(signatures) == 1

    def test_signature_distinguishes_conflicting_orders(self):
        """Two threads writing the SAME location: write order is the
        partial order, so multiple signatures must appear across seeds."""

        def factory():
            x = SharedVar("x", 0)

            def writer(k):
                for _ in range(2):
                    yield x.write(k, label=f"w{k}")

            def main():
                handles = yield from spawn_all(
                    [lambda: writer(1), lambda: writer(2)]
                )
                yield from join_all(handles)

            return main()

        signatures = {
            conflict_signature(_trace(Program(factory), seed=s)) for s in range(20)
        }
        assert len(signatures) > 1

    def test_reads_between_same_writes_commute(self):
        """Reader order between two writes must NOT split signatures."""

        def factory():
            x = SharedVar("x", 0)

            def reader(k):
                yield x.read(label=f"r{k}")

            def main():
                yield x.write(1)
                handles = yield from spawn_all(
                    [lambda: reader(1), lambda: reader(2)]
                )
                yield from join_all(handles)
                yield x.write(2)

            return main()

        signatures = {
            conflict_signature(_trace(Program(factory), seed=s)) for s in range(15)
        }
        assert len(signatures) == 1


class TestMeasureCoverage:
    def test_report_fields(self):
        report = measure_coverage(figure1.build(), seeds=range(10))
        assert report.runs == 10
        assert 1 <= report.distinct_signatures <= 10
        assert 0 <= report.diversity <= 1
        assert "distinct partial orders" in str(report)

    @staticmethod
    def counter_program(increments: int = 3):
        """Two unlocked incrementers: plenty of distinct partial orders."""

        def factory():
            x = SharedVar("x", 0)

            def worker(k):
                for _ in range(increments):
                    value = yield x.read(label=f"r{k}")
                    yield x.write(value + 1, label=f"w{k}")

            def main():
                handles = yield from spawn_all(
                    [lambda: worker(1), lambda: worker(2)]
                )
                yield from join_all(handles)

            return main()

        return Program(factory)

    def test_passive_strategies_explore_many_partial_orders(self):
        runs = 60
        random_coverage = measure_coverage(
            self.counter_program(), strategy="random", seeds=range(runs)
        )
        rapos_coverage = measure_coverage(
            self.counter_program(), strategy="rapos", seeds=range(runs)
        )
        # Both passive strategies spread across the schedule space.
        assert random_coverage.distinct_signatures >= 5
        assert rapos_coverage.distinct_signatures >= 5
        assert sum(random_coverage.signature_counts.values()) == runs
        assert 0 < random_coverage.minority_share <= 1
        assert 0 < rapos_coverage.minority_share <= 1

    def test_unknown_strategy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            measure_coverage(figure1.build(), strategy="psychic", seeds=range(2))
