"""Seed-only replay of race-revealing executions (experiment E9)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    replay_race,
    replays_identically,
    schedule_signature,
    signature_from_trace,
)
from repro.workloads import figure1, figure2


class TestReplay:
    def test_replay_reproduces_outcome_and_trace(self):
        first = replay_race(figure1.build(), figure1.REAL_PAIR, seed=11)
        second = replay_race(figure1.build(), figure1.REAL_PAIR, seed=11)
        assert first.schedule_signature() == second.schedule_signature()
        assert first.outcome.created == second.outcome.created
        assert [c.error_type for c in first.outcome.crashes] == [
            c.error_type for c in second.outcome.crashes
        ]

    def test_different_seeds_can_differ(self):
        signatures = {
            replay_race(
                figure1.build(), figure1.REAL_PAIR, seed=s
            ).schedule_signature()
            for s in range(8)
        }
        assert len(signatures) > 1

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_replays_identically_for_any_seed(self, seed):
        assert replays_identically(
            figure1.build(), figure1.REAL_PAIR, seed, attempts=3
        )

    def test_replay_of_error_revealing_seed_reproduces_the_error(self):
        """The paper's debugging story: find a seed whose resolution throws,
        then replay it at will."""
        error_seed = None
        for seed in range(40):
            run = replay_race(figure2.build(8), figure2.RACING_PAIR, seed=seed)
            if run.outcome.crashes:
                error_seed = seed
                break
        assert error_seed is not None
        for _ in range(3):
            again = replay_race(
                figure2.build(8), figure2.RACING_PAIR, seed=error_seed
            )
            assert again.outcome.crashes
            assert again.outcome.crashes[0].error_type == "AssertionViolation"

    def test_trace_includes_events(self):
        run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=0)
        assert run.events
        assert run.schedule_signature()[0][0] == "ThreadStartEvent"


class TestReplayToTraceFile:
    def test_saved_trace_carries_the_same_schedule(self, tmp_path):
        path = tmp_path / "replay.jsonl"
        run = replay_race(
            figure1.build(), figure1.REAL_PAIR, seed=11, trace_path=path
        )
        assert signature_from_trace(path) == run.schedule_signature()

    def test_signature_works_on_any_event_sequence(self):
        run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=0)
        assert schedule_signature(run.events) == run.schedule_signature()

    def test_saved_trace_replays_through_detectors(self, tmp_path):
        from repro.trace import analyze_trace

        path = tmp_path / "replay.jsonl"
        replay_race(figure1.build(), figure1.REAL_PAIR, seed=11, trace_path=path)
        report = analyze_trace(path, ["hybrid"])["hybrid"]
        assert report.program == "figure1"
