"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import RandomScheduler
from repro.runtime import Execution, Program


def run_program(factory, *, seed=0, scheduler=None, observers=(), max_steps=100_000):
    """Build and run a Program from a factory; return the ExecutionResult."""
    program = factory if isinstance(factory, Program) else Program(factory)
    execution = Execution(
        program, seed=seed, observers=observers, max_steps=max_steps
    )
    return execution.run(scheduler or RandomScheduler(preemption="every"))


def run_single(body_factory, *, seed=0, observers=(), max_steps=100_000):
    """Run a single-threaded generator body to completion; assert success."""

    def make():
        def main():
            yield from body_factory()

        return main()

    result = run_program(make, seed=seed, observers=observers, max_steps=max_steps)
    assert not result.crashes, f"unexpected crashes: {result.crashes}"
    assert not result.deadlock, "unexpected deadlock"
    return result


@pytest.fixture
def rng_seeds():
    """A small deterministic spread of seeds for multi-run assertions."""
    return range(12)
