"""The paper's "embarrassingly parallel" property, asserted.

"Since different invocations of RaceFuzzer are independent of each other,
performance of RaceFuzzer can be increased linearly with the number of
processors or cores."  (Section 1.)

Independence here means: a trial is a pure function of (program, pair,
seed).  We check it two ways: (a) trials commute — fuzzing seed ranges in
any order or partition yields identical aggregated verdicts; (b) a trial's
outcome is unaffected by the trials that ran before it in the same
process.
"""

from repro.core import RaceFuzzer, fuzz_races
from repro.core.results import PairVerdict
from repro.workloads import figure1


def _fuzz_partition(seed_ranges):
    """Fuzz each range separately (simulating separate workers), merge."""
    merged = None
    for seeds in seed_ranges:
        fuzzer = RaceFuzzer(figure1.REAL_PAIR)
        verdict = PairVerdict(pair=figure1.REAL_PAIR)
        for seed in seeds:
            verdict.absorb(fuzzer.run(figure1.build(), seed=seed))
        if merged is None:
            merged = verdict
        else:
            merged.merge(verdict)
    return merged


def _signature(verdict):
    return (
        verdict.trials,
        verdict.times_created,
        dict(verdict.exceptions),
        verdict.deadlocks,
        verdict.created_pairs,
    )


class TestEmbarrassinglyParallel:
    def test_partitioned_workers_equal_single_worker(self):
        single = _fuzz_partition([range(40)])
        two_way = _fuzz_partition([range(20), range(20, 40)])
        four_way = _fuzz_partition(
            [range(0, 10), range(10, 20), range(20, 30), range(30, 40)]
        )
        assert _signature(single) == _signature(two_way) == _signature(four_way)

    def test_partition_order_is_irrelevant(self):
        forward = _fuzz_partition([range(15), range(15, 30)])
        backward = _fuzz_partition([range(15, 30), range(15)])
        assert _signature(forward) == _signature(backward)

    def test_trial_outcome_independent_of_history(self):
        """Seed 17's outcome is the same whether it runs cold or after 16
        other trials on the same fuzzer object."""
        fuzzer = RaceFuzzer(figure1.REAL_PAIR)
        for seed in range(17):
            fuzzer.run(figure1.build(), seed=seed)
        warm = fuzzer.run(figure1.build(), seed=17)
        cold = RaceFuzzer(figure1.REAL_PAIR).run(figure1.build(), seed=17)
        assert warm.created == cold.created
        assert warm.result.steps == cold.result.steps
        assert [c.error_type for c in warm.crashes] == [
            c.error_type for c in cold.crashes
        ]

    def test_merge_rejects_foreign_pairs(self):
        import pytest

        mine = PairVerdict(pair=figure1.REAL_PAIR)
        theirs = PairVerdict(pair=figure1.FALSE_PAIR)
        with pytest.raises(ValueError):
            mine.merge(theirs)

    def test_fuzz_races_matches_manual_partition(self):
        verdicts = fuzz_races(
            figure1.build(), [figure1.REAL_PAIR], trials=30, base_seed=0
        )
        manual = _fuzz_partition([range(30)])
        assert _signature(verdicts[figure1.REAL_PAIR]) == _signature(manual)
