"""Every example script runs end-to-end (the docs must not rot)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None):
    script = EXAMPLES / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Phase 1" in out and "Phase 2" in out
        assert "replayed identically" in out

    def test_figure1(self, capsys):
        run_example("figure1_races.py")
        out = capsys.readouterr().out
        assert "created 100/100" in out
        assert "created 0/100" in out

    def test_figure2(self, capsys):
        run_example("figure2_probability.py", ["--runs", "20"])
        out = capsys.readouterr().out
        assert "RF P(race)" in out
        assert "1.00" in out

    def test_jdk_collections_bug(self, capsys):
        run_example("jdk_collections_bug.py")
        out = capsys.readouterr().out
        assert "ConcurrentModificationError" in out
        assert "fixed version" in out
        assert "crashes: none" in out

    def test_deadlock_fuzzing(self, capsys):
        run_example("deadlock_fuzzing.py")
        out = capsys.readouterr().out
        assert "deadlock-directed fuzzer" in out
        assert "cycle:" in out

    def test_atomicity_fuzzing(self, capsys):
        run_example("atomicity_fuzzing.py")
        out = capsys.readouterr().out
        assert "interleavings forced" in out

    def test_native_threads(self, capsys):
        run_example("native_threads.py")
        out = capsys.readouterr().out
        assert "race created" in out
        assert "Phase 1" in out
