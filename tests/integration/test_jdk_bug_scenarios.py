"""Section 5.3's JDK bug narratives, reproduced scenario by scenario.

"if we call l1.containsAll(l2) and l2.removeAll() in two threads, where l1
and l2 are synchronized LinkedLists ..., then we can get both
ConcurrentModificationException and NoSuchElementException."
"""

import pytest

from repro.core import RandomScheduler, detect_races, race_directed_test
from repro.jdk import (
    ArrayList,
    HashSet,
    LinkedList,
    TreeSet,
    synchronized_list,
    synchronized_set,
)
from repro.runtime import Execution, Program, join_all, spawn_all


def _two_object_scenario(backing_factory, wrap, left_call, right_call):
    """l1.<left_call>(l2) racing l2.<right_call>(probe)."""

    def factory():
        first = wrap(backing_factory("obj1"))
        second = wrap(backing_factory("obj2"))
        probe = wrap(backing_factory("probe"))

        def setup():
            for value in range(4):
                yield from first.add(value)
                yield from second.add(value)
            yield from probe.add(2)

        def left():
            yield from getattr(first, left_call)(second)

        def right():
            yield from getattr(second, right_call)(probe)

        def main():
            yield from setup()
            handles = yield from spawn_all([left, right])
            yield from join_all(handles)

        return main()

    return Program(factory, name=f"{left_call}-vs-{right_call}")


def _collect_exceptions(program, runs=120):
    seen = set()
    for seed in range(runs):
        result = Execution(program, seed=seed, max_steps=100_000).run(
            RandomScheduler(preemption="every")
        )
        seen.update(result.exception_types)
    return seen


class TestLinkedListScenario:
    def test_contains_all_vs_remove_all_throws_both_exceptions(self):
        program = _two_object_scenario(
            LinkedList, synchronized_list, "contains_all", "remove_all"
        )
        seen = _collect_exceptions(program)
        assert "ConcurrentModificationError" in seen
        assert "NoSuchElementError" in seen
        assert seen <= {"ConcurrentModificationError", "NoSuchElementError"}

    def test_equals_vs_remove_all_throws(self):
        program = _two_object_scenario(
            LinkedList, synchronized_list, "equals", "remove_all"
        )
        assert "ConcurrentModificationError" in _collect_exceptions(program)


class TestArrayListScenario:
    def test_contains_all_vs_clear_throws(self):
        program = _two_object_scenario(
            ArrayList, synchronized_list, "contains_all", "remove_all"
        )
        seen = _collect_exceptions(program)
        assert "ConcurrentModificationError" in seen


class TestSetScenarios:
    def test_hashset_contains_all_vs_remove_all(self):
        program = _two_object_scenario(
            HashSet, synchronized_set, "contains_all", "remove_all"
        )
        assert "ConcurrentModificationError" in _collect_exceptions(program)

    def test_treeset_add_all_vs_remove_all(self):
        program = _two_object_scenario(
            TreeSet, synchronized_set, "add_all", "remove_all"
        )
        assert "ConcurrentModificationError" in _collect_exceptions(program)


class TestRaceFuzzerOnTheScenario:
    """The full pipeline on the paper's exact scenario: the racing pairs
    are found by Phase 1, confirmed real by Phase 2, and the exceptions
    are attributed to them."""

    @pytest.fixture(scope="class")
    def campaign(self):
        program = _two_object_scenario(
            LinkedList, synchronized_list, "contains_all", "remove_all"
        )
        return race_directed_test(program, trials=25, phase1_seeds=range(5))

    def test_all_pairs_confirmed_real(self, campaign):
        assert campaign.potential_pairs >= 4
        assert len(campaign.real_pairs) >= campaign.potential_pairs - 1

    def test_exceptions_attributed(self, campaign):
        assert "ConcurrentModificationError" in campaign.exception_types

    def test_every_pair_is_on_the_victim_collection(self, campaign):
        """All racing statements live in the LinkedList internals: the bug
        is entirely inside the library, as the paper emphasizes."""
        for pair in campaign.phase1.pairs:
            for stmt in (pair.first, pair.second):
                assert "linked_list.py" in stmt.file


class TestProperlyLockedControl:
    def test_manual_client_locking_fixes_it(self):
        """The JDK-documented fix: callers synchronize on the argument's
        mutex around bulk operations.  No exceptions under any seed."""

        def factory():
            first = synchronized_list(LinkedList("obj1"))
            second = synchronized_list(LinkedList("obj2"))
            probe = synchronized_list(LinkedList("probe"))

            def setup():
                for value in range(4):
                    yield from first.add(value)
                    yield from second.add(value)
                yield from probe.add(2)

            def left():
                # Client-side locking of the iterated collection.
                yield second.mutex.acquire()
                yield from first.contains_all(second)
                yield second.mutex.release()

            def right():
                yield from second.remove_all(probe)

            def main():
                yield from setup()
                handles = yield from spawn_all([left, right])
                yield from join_all(handles)

            return main()

        program = Program(factory, name="fixed")
        for seed in range(60):
            result = Execution(program, seed=seed, max_steps=100_000).run(
                RandomScheduler(preemption="every")
            )
            assert not result.crashes, f"seed {seed}: {result.crashes}"
