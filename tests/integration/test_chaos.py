"""Chaos drills: campaigns under injected infrastructure failure.

The ISSUE-7 acceptance bar, end to end:

* corrupting any single trace-store entry never crashes a campaign —
  ``detect --trace-dir`` heals it (quarantine + re-record) and produces
  the identical report;
* a fuzz campaign under a combined fault plan (crash + disk_full +
  memory_hog + malformed, all transient) produces verdicts identical to
  the clean run;
* the ``repro store`` maintenance surface drives the same machinery from
  the command line.
"""

import pytest

from repro.cli import main
from repro.core import detect_races, fuzz_races, parse_fault_plan
from repro.trace import QUARANTINE_DIR, TraceStore, detect_key
from repro.workloads import figure1


def _corrupt_one_entry(trace_dir):
    """Hand-damage the first store entry (drop its footer)."""
    entry = TraceStore(trace_dir).entries()[0]
    lines = entry.read_bytes().splitlines(keepends=True)
    entry.write_bytes(b"".join(lines[:-1]))
    return entry


def _signature(verdict):
    return (
        verdict.trials,
        verdict.times_created,
        dict(verdict.exceptions),
        verdict.deadlocks,
        verdict.created_pairs,
    )


class TestDetectSurvivesCorruption:
    def test_corrupt_store_entry_heals_with_identical_report(self, tmp_path):
        program = figure1.build()
        clean = detect_races(
            program, seeds=range(4), max_steps=10_000, trace_dir=tmp_path
        )
        _corrupt_one_entry(tmp_path)
        healed = detect_races(
            figure1.build(), seeds=range(4), max_steps=10_000, trace_dir=tmp_path
        )
        assert healed.pairs == clean.pairs
        assert (tmp_path / QUARANTINE_DIR).exists()
        # The store is whole again: every entry passes verification.
        assert TraceStore(tmp_path).verify() == []

    def test_cli_detect_survives_hand_corruption(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "store")
        args = ["detect", "figure1", "--seeds", "4", "--trace-dir", trace_dir]
        assert main(args) == 0
        clean = capsys.readouterr().out
        _corrupt_one_entry(trace_dir)
        assert main(args) == 0
        assert capsys.readouterr().out == clean

    def test_injected_record_corruption_matches_clean_run(self, tmp_path):
        # The corrupt_trace fault damages the trace a record task just
        # published; the parent's with_recovery read must heal it.
        clean = detect_races(
            figure1.build(),
            seeds=range(3),
            max_steps=10_000,
            trace_dir=tmp_path / "clean",
        )
        chaos = detect_races(
            figure1.build(),
            seeds=range(3),
            max_steps=10_000,
            trace_dir=tmp_path / "chaos",
            jobs=2,
            faults=parse_fault_plan("record:0:corrupt_trace"),
        )
        assert chaos.pairs == clean.pairs
        assert (tmp_path / "chaos" / QUARANTINE_DIR).exists()


class TestChaosCampaignEquivalence:
    def test_fuzz_verdicts_identical_under_combined_fault_plan(self):
        pairs = [figure1.REAL_PAIR, figure1.FALSE_PAIR]
        clean = fuzz_races(figure1.build(), pairs, trials=8, chunk_size=4)
        # One transient fault of each supervisor-visible kind; every
        # retry succeeds, so coverage — and therefore verdicts — match.
        plan = parse_fault_plan(
            "fuzz:0:crash:1,fuzz:1:disk_full:1,fuzz:2:malformed:1,"
            "fuzz:3:memory_hog:1:1"
        )
        chaos = fuzz_races(
            figure1.build(), pairs, trials=8, chunk_size=4, faults=plan
        )
        assert set(chaos) == set(clean)
        for pair in clean:
            assert _signature(chaos[pair]) == _signature(clean[pair])
            assert not chaos[pair].quarantined


class TestStoreCLI:
    def test_gc_and_verify_drive_the_store(self, tmp_path, capsys):
        trace_dir = str(tmp_path)
        store = TraceStore(trace_dir)
        for seed in range(3):
            store.ensure(
                detect_key("figure1", seed, max_steps=10_000), figure1.build()
            )

        assert main(["store", "verify", "--trace-dir", trace_dir]) == 0
        assert "0 damaged" in capsys.readouterr().out

        _corrupt_one_entry(trace_dir)
        assert (
            main(["store", "verify", "--trace-dir", trace_dir, "--quarantine"])
            == 1
        )
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert "CORRUPT" in captured.err

        assert (
            main(["store", "gc", "--trace-dir", trace_dir, "--max-entries", "1"])
            == 0
        )
        assert "evicted 1 entry" in capsys.readouterr().out
        assert len(TraceStore(trace_dir).entries()) == 1

    def test_gc_without_budget_is_an_error(self, tmp_path, capsys):
        assert main(["store", "gc", "--trace-dir", str(tmp_path)]) == 2
        assert "--quota" in capsys.readouterr().err

    def test_bad_quota_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as info:
            main(["store", "gc", "--trace-dir", str(tmp_path), "--quota", "huge"])
        assert info.value.code == 2
        capsys.readouterr()
