"""The paper's headline claims, asserted end-to-end (experiments E3-E7).

Hypothesis 1 (Section 5): "RaceFuzzer can create real race conditions with
very high probability.  It can also show if a real race can lead to an
exception."

Hypothesis 2: "The real races detected automatically by RaceFuzzer are the
same as the real races that are predicted and manually confirmed" — in our
reproduction, the manually-confirmed set is the seeded ground truth of
each workload.
"""

import pytest

from repro.core import baseline_exceptions, detect_races, race_directed_test
from repro.workloads import get, table1_workloads

#: workloads whose races RaceFuzzer creates with probability ~1 (trials can
#: stay small); the flaky collection drivers are covered by ground-truth
#: tests with lower bounds instead.
HIGH_PROBABILITY = ["moldyn", "raytracer", "montecarlo", "cache4j", "hedc"]


@pytest.fixture(scope="module")
def campaigns():
    cache = {}

    def run(name, trials=25):
        if name not in cache:
            spec = get(name)
            cache[name] = race_directed_test(
                spec.build(), trials=trials, phase1_seeds=spec.phase1_seeds
            )
        return cache[name]

    return run


class TestHypothesis1:
    @pytest.mark.parametrize("name", HIGH_PROBABILITY)
    def test_real_races_created_with_high_probability(self, campaigns, name):
        campaign = campaigns(name)
        truth = get(name).truth
        real = campaign.real_pairs
        assert len(real) >= truth.real_pairs * 0.99  # exact for these
        assert campaign.mean_probability() >= 0.8

    @pytest.mark.parametrize("name", ["cache4j", "hedc"])
    def test_harmful_races_surface_exceptions(self, campaigns, name):
        campaign = campaigns(name)
        assert campaign.harmful_pairs
        assert campaign.exception_types

    def test_racefuzzer_beats_default_scheduler_on_cache4j(self, campaigns):
        """Column 9 vs column 10: the directed scheduler finds the
        InterruptedException crash far more often than the default one."""
        campaign = campaigns("cache4j")
        directed_rate = sum(campaign.exception_types.values()) / sum(
            v.trials for v in campaign.verdicts.values()
        )
        passive = baseline_exceptions(
            get("cache4j").build(), runs=30, scheduler="default"
        )
        passive_rate = sum(passive.values()) / 30
        assert directed_rate > passive_rate


class TestHypothesis2:
    @pytest.mark.parametrize("name", HIGH_PROBABILITY + ["sor", "jspider"])
    def test_real_set_matches_ground_truth(self, campaigns, name):
        campaign = campaigns(name)
        truth = get(name).truth
        assert len(campaign.real_pairs) == truth.real_pairs

    @pytest.mark.parametrize("name", ["sor", "jspider"])
    def test_no_false_warnings(self, campaigns, name):
        """Programs with zero real races must produce zero RaceFuzzer
        reports, however many potential races Phase 1 shows."""
        campaign = campaigns(name)
        assert campaign.potential_pairs > 0
        assert campaign.real_pairs == []
        assert campaign.harmful_pairs == []


class TestPhase1Coverage:
    @pytest.mark.parametrize("spec", table1_workloads(), ids=lambda s: s.name)
    def test_phase1_finds_potential_races_everywhere(self, spec):
        report = detect_races(spec.build(), seeds=spec.phase1_seeds)
        assert len(report) > 0, f"{spec.name}: hybrid found nothing"

    def test_more_seeds_never_lose_pairs(self):
        spec = get("weblech")
        few = detect_races(spec.build(), seeds=(0,))
        many = detect_races(spec.build(), seeds=range(4))
        assert set(few.pairs) <= set(many.pairs)
