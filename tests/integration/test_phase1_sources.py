"""RaceFuzzer is Phase-1-agnostic (Section 1: any analysis that yields
"a set of statements whose simultaneous execution could lead to a
concurrency problem" can seed the scheduler)."""

import pytest

from repro.core import detect_races, race_directed_test
from repro.runtime.statement import Statement, StatementPair
from repro.workloads import figure1


class TestAlternativePhase1Detectors:
    @pytest.mark.parametrize("detector", ["hybrid", "happens-before"])
    def test_vc_based_detectors_feed_phase2(self, detector):
        """Whatever Phase 1 reports, Phase 2 confirms exactly the real race
        and rejects the rest — the verdicts differ only in how much chaff
        Phase 2 has to sift."""
        campaign = race_directed_test(
            figure1.build(),
            detector=detector,
            phase1_seeds=range(5),
            trials=30,
        )
        assert campaign.real_pairs == [figure1.REAL_PAIR], detector
        assert campaign.harmful_pairs == [figure1.REAL_PAIR], detector

    def test_eraser_misses_figure1_by_design(self):
        """Faithful Eraser behaviour worth documenting: thread2's z write
        usually comes first (it is thread2's first statement), leaving z in
        Exclusive; thread1's unlocked *read* then moves it to Shared —
        which Eraser does not report without a subsequent write.  The
        classic lockset blind spot, and one reason the paper's Phase 1 is
        the hybrid detector."""
        report = detect_races(figure1.build(), detector="lockset", seeds=range(8))
        assert figure1.REAL_PAIR not in report.evidence

    def test_eraser_feeds_phase2_on_write_write_programs(self):
        from repro.runtime import Program, SharedVar, join_all, spawn_all

        def factory():
            x = SharedVar("x", 0)

            def first_writer():
                yield x.write(1, label="wa")

            def second_writer():
                yield x.write(2, label="wb")

            def main():
                handles = yield from spawn_all([first_writer, second_writer])
                yield from join_all(handles)

            return main()

        campaign = race_directed_test(
            Program(factory), detector="lockset", phase1_seeds=range(6), trials=20
        )
        assert campaign.potential_pairs >= 1
        assert campaign.real_pairs  # confirmed by Phase 2

    def test_precise_hb_is_a_subset_of_hybrid_on_figure1(self):
        counts = {
            name: len(detect_races(figure1.build(), detector=name, seeds=range(8)))
            for name in ("happens-before", "hybrid")
        }
        assert counts["happens-before"] <= counts["hybrid"]


class TestHandWrittenPairs:
    def test_static_tool_style_pair_list(self):
        """Simulates seeding Phase 2 from a static analyzer: hand the fuzzer
        statement pairs built from labels, no dynamic Phase 1 at all."""
        pairs = [
            StatementPair(Statement(label="5"), Statement(label="7")),
            StatementPair(Statement(label="1"), Statement(label="10")),
            # A pair a sloppy static tool might invent: lock-protected y.
            StatementPair(Statement(label="3"), Statement(label="9")),
        ]
        campaign = race_directed_test(figure1.build(), pairs=pairs, trials=30)
        assert campaign.real_pairs == [figure1.REAL_PAIR]
        # The invented pair is dismissed like any other false alarm.
        fake = StatementPair(Statement(label="3"), Statement(label="9"))
        assert not campaign.verdicts[fake].is_real

    def test_single_statement_self_pair(self):
        """A RaceSet may be one statement racing with itself."""
        from repro.runtime import Program, SharedVar, join_all, spawn_all

        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(1, label="W")

            def main():
                handles = yield from spawn_all([writer, writer, writer])
                yield from join_all(handles)

            return main()

        stmt = Statement(label="W")
        campaign = race_directed_test(
            Program(factory), pairs=[StatementPair(stmt, stmt)], trials=20
        )
        assert campaign.real_pairs == [StatementPair(stmt, stmt)]
