"""DeadlockFuzzer pointed at the real JDK-wrapper hazard.

The synchronized-collection drivers exposed a genuine lock-order
inversion: ``l1.removeAll(l2)`` holds l1's mutex and acquires l2's (via
``l2.contains``), while ``l2.removeAll(l1)`` does the opposite.  This test
closes the loop the way a user would: mine the lock-order graph from
passive runs, hand the cyclic acquire statements to the DeadlockFuzzer,
and watch it manufacture the deadlock far more reliably than chance.
"""

from repro.core import (
    DeadlockFuzzer,
    RandomScheduler,
    detect_lock_order_inversions,
)
from repro.jdk import HashSet, synchronized_set
from repro.runtime import Execution, Program, join_all, ops, spawn_all


def _cross_remove_all_program(pad: int = 40):
    def factory():
        first = synchronized_set(HashSet("first"))
        second = synchronized_set(HashSet("second"))

        def setup():
            for value in range(3):
                yield from first.add(value)
                yield from second.add(value + 2)

        def left():
            # Enough skew that many passive schedules serialize the two
            # bulk calls: the lock-order miner learns edges from *clean*
            # runs (a blocked acquisition emits no event), exactly like
            # the original DeadlockFuzzer's Phase 1.
            for _ in range(pad):
                yield ops.yield_point()
            yield from first.remove_all(second)

        def right():
            yield from second.remove_all(first)

        def main():
            yield from setup()
            handles = yield from spawn_all([left, right])
            yield from join_all(handles)

        return main()

    return Program(factory, name="cross-removeAll")


class TestJdkWrapperDeadlock:
    def test_lock_order_graph_has_the_cycle(self):
        report = detect_lock_order_inversions(
            _cross_remove_all_program(), seeds=range(4)
        )
        cycles = report.cycles()
        assert cycles
        lock_names = {
            edge.acquired.describe() for pair in cycles for edge in pair
        }
        assert any("mutex" in name for name in lock_names)

    def test_directed_beats_passive(self):
        runs = 25
        passive = sum(
            Execution(_cross_remove_all_program(), seed=seed)
            .run(RandomScheduler("every"))
            .deadlock
            for seed in range(runs)
        )
        targets = detect_lock_order_inversions(
            _cross_remove_all_program(), seeds=range(4)
        ).target_statements()
        assert targets
        fuzzer = DeadlockFuzzer(targets, max_steps=100_000)
        directed = sum(
            fuzzer.run(_cross_remove_all_program(), seed=seed).deadlock
            for seed in range(runs)
        )
        assert directed > passive
        assert directed >= runs * 0.6

    def test_deadlocked_threads_hold_the_two_mutexes(self):
        targets = detect_lock_order_inversions(
            _cross_remove_all_program(), seeds=range(4)
        ).target_statements()
        fuzzer = DeadlockFuzzer(targets, max_steps=100_000)
        for seed in range(25):
            outcome = fuzzer.run(_cross_remove_all_program(), seed=seed)
            if outcome.deadlock:
                # main + both actors are stuck.
                assert len(outcome.result.deadlocked_tids) == 3
                return
        raise AssertionError("directed fuzzing never produced the deadlock")
