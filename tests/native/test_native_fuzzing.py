"""The two-phase pipeline over real Python threads."""

import pytest

from repro.native import (
    NativeRuntime,
    RaceDirectedNativeScheduler,
    detect_races_native,
    fuzz_native,
)
from repro.runtime.statement import Statement, StatementPair


def lost_update_program(rt):
    """Two tellers race on balance; a locked audit counter does not race."""
    balance = rt.var("balance", 100)
    audit = rt.var("audit", 0)
    lock = rt.lock("L")

    def teller(amount):
        current = rt.read(balance, label="teller-read")
        rt.write(balance, current + amount, label="teller-write")
        rt.acquire(lock)
        rt.write(audit, rt.read(audit) + 1)
        rt.release(lock)

    workers = [rt.spawn(teller, 10), rt.spawn(teller, -10)]
    for worker in workers:
        rt.join(worker)
    rt.check(rt.read(balance) == 100, "lost update")


def flag_ordered_program(rt):
    """Figure-1 pattern over native threads: a real false alarm."""
    data = rt.var("data", None)
    ready = rt.var("ready", 0)
    lock = rt.lock("flag")

    def producer():
        rt.write(data, "payload", label="produce")
        rt.acquire(lock)
        rt.write(ready, 1)
        rt.release(lock)

    def consumer():
        while True:
            rt.acquire(lock)
            flag = rt.read(ready)
            rt.release(lock)
            if flag:
                break
            rt.yield_point()
        value = rt.read(data, label="consume")
        rt.check(value == "payload", "saw unpublished data")

    handles = [rt.spawn(producer), rt.spawn(consumer)]
    for handle in handles:
        rt.join(handle)


READ_WRITE = StatementPair(
    Statement(label="teller-read"), Statement(label="teller-write")
)
FALSE_PAIR = StatementPair(Statement(label="produce"), Statement(label="consume"))


class TestPhase1Native:
    def test_hybrid_finds_the_balance_pairs_only(self):
        report = detect_races_native(lost_update_program, seeds=range(5))
        sites = {frozenset((p.first.site, p.second.site)) for p in report.pairs}
        assert frozenset(("teller-read", "teller-write")) in sites
        assert frozenset(("teller-write",)) in sites  # the w/w self-pair
        # the locked audit counter must not be reported
        for pair in report.pairs:
            assert "audit" not in str(pair)
        assert len(report) == 2

    def test_flag_pattern_is_a_hybrid_false_alarm(self):
        report = detect_races_native(flag_ordered_program, seeds=range(5))
        assert FALSE_PAIR in report.evidence


class TestPhase2Native:
    def test_real_race_created_with_probability_one(self):
        outcomes = fuzz_native(lost_update_program, READ_WRITE, seeds=range(25))
        assert all(outcome.pairs_created for outcome in outcomes)
        crashed = sum(bool(outcome.crashes) for outcome in outcomes)
        assert crashed >= 5  # the bad resolution order loses the update

    def test_false_alarm_never_created(self):
        outcomes = fuzz_native(flag_ordered_program, FALSE_PAIR, seeds=range(15))
        assert not any(outcome.pairs_created for outcome in outcomes)
        assert not any(outcome.crashes for outcome in outcomes)
        assert not any(outcome.deadlock for outcome in outcomes)

    def test_directed_beats_passive_on_crash_rate(self):
        passive = 0
        for seed in range(25):
            runtime = NativeRuntime(seed=seed)
            passive += bool(runtime.run(lost_update_program, runtime).crashes)
        directed = sum(
            bool(outcome.crashes)
            for outcome in fuzz_native(lost_update_program, READ_WRITE, seeds=range(25))
        )
        assert directed >= passive

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            RaceDirectedNativeScheduler(set())

    def test_directed_replay_is_deterministic(self):
        def signature(seed):
            scheduler = RaceDirectedNativeScheduler(READ_WRITE)
            runtime = NativeRuntime(seed=seed, scheduler=scheduler)
            result = runtime.run(lost_update_program, runtime)
            return (
                result.ops,
                result.races_created,
                tuple(result.exception_types),
            )

        for seed in range(5):
            assert signature(seed) == signature(seed)


class TestWatchdogNative:
    def test_lone_postponed_thread_is_released(self):
        """A pair whose partner never arrives: the run must still finish."""

        def program(rt):
            x = rt.var("x", 0)

            def only():
                rt.write(x, 1, label="lonely")
                rt.write(x, 2)

            handle = rt.spawn(only)
            rt.join(handle)

        pair = StatementPair(Statement(label="lonely"), Statement(label="never"))
        outcomes = fuzz_native(program, pair, seeds=range(5), max_ops=20_000)
        for outcome in outcomes:
            assert not outcome.truncated
            assert not outcome.deadlock
            assert not outcome.pairs_created
