"""Native-backend traces satisfy the same invariants and render the same
way as generator-engine traces — the detectors' contract."""

from repro.core.traceview import format_trace
from repro.native import NativeRuntime
from repro.runtime import EventTrace, MemEvent
from repro.runtime.validate import validate_trace


def _traced_native_run(seed=0):
    trace = EventTrace()

    def program(rt):
        x = rt.var("x", 0)
        lock = rt.lock("L")

        def worker(k):
            rt.acquire(lock)
            rt.write(x, rt.read(x) + k)
            rt.release(lock)

        handles = [rt.spawn(worker, 1), rt.spawn(worker, 2)]
        for handle in handles:
            rt.join(handle)
        rt.check(rt.read(x) == 3, "lost update under lock")

    runtime = NativeRuntime(seed=seed, observers=(trace,))
    result = runtime.run(program, runtime)
    return trace.events, result


class TestNativeTraceValidity:
    def test_traces_validate_across_seeds(self):
        for seed in range(8):
            events, result = _traced_native_run(seed)
            assert not result.crashes
            audit = validate_trace(events)
            assert audit.mem_events >= 5
            assert audit.acquires >= 2
            assert audit.messages_received <= audit.messages_sent

    def test_wait_notify_traces_validate(self):
        trace = EventTrace()

        def program(rt):
            lock = rt.lock("L")
            ready = rt.var("ready", 0)

            def consumer():
                rt.acquire(lock)
                while rt.read(ready) == 0:
                    rt.wait(lock)
                rt.release(lock)

            def producer():
                rt.acquire(lock)
                rt.write(ready, 1)
                rt.notify(lock)
                rt.release(lock)

            handles = [rt.spawn(consumer), rt.spawn(producer)]
            for handle in handles:
                rt.join(handle)

        runtime = NativeRuntime(seed=3, observers=(trace,))
        result = runtime.run(program, runtime)
        assert not result.deadlock
        validate_trace(trace.events)


class TestNativeTraceRendering:
    def test_format_trace_renders_native_events(self):
        events, _ = _traced_native_run(seed=1)
        text = format_trace(events)
        assert "acquire L" in text
        assert "write x" in text
        assert "{L}" in text  # lockset captured while held
        assert "end" in text

    def test_mem_events_carry_native_call_sites(self):
        events, _ = _traced_native_run(seed=1)
        mems = [event for event in events if isinstance(event, MemEvent)]
        assert mems
        for event in mems:
            assert event.stmt.file.endswith("test_native_traces.py")
