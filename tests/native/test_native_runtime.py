"""The real-threads backend: token scheduling, monitors, crash domains."""

import pytest

from repro.native import NativeRuntime
from repro.runtime.errors import AssertionViolation, IllegalMonitorState
from repro.runtime.observer import EventTrace
from repro.runtime.events import AcquireEvent, MemEvent


def run_native(program, seed=0, **kwargs):
    runtime = NativeRuntime(seed=seed, **kwargs)
    return runtime.run(program, runtime)


class TestBasics:
    def test_single_thread_reads_and_writes(self):
        observed = {}

        def program(rt):
            x = rt.var("x", 5)
            observed["initial"] = rt.read(x)
            rt.write(x, 9)
            observed["after"] = rt.read(x)

        result = run_native(program)
        assert observed == {"initial": 5, "after": 9}
        assert not result.crashes and not result.deadlock
        assert result.ops >= 3

    def test_spawn_join(self):
        log = []

        def program(rt):
            x = rt.var("x", 0)

            def child(value):
                rt.write(x, value)
                log.append(value)

            handle = rt.spawn(child, 42, name="kid")
            assert handle.name == "kid"
            rt.join(handle)
            assert rt.read(x) == 42

        result = run_native(program)
        assert log == [42]
        assert not result.crashes

    def test_locked_counter_is_exact_under_all_seeds(self):
        for seed in range(10):
            def program(rt):
                value = rt.var("value", 0)
                lock = rt.lock("L")

                def worker():
                    for _ in range(4):
                        rt.acquire(lock)
                        rt.write(value, rt.read(value) + 1)
                        rt.release(lock)

                workers = [rt.spawn(worker) for _ in range(3)]
                for handle in workers:
                    rt.join(handle)
                rt.check(rt.read(value) == 12, "lost update under lock!")

            result = run_native(program, seed=seed)
            assert not result.crashes, f"seed {seed}: {result.crashes}"

    def test_unlocked_counter_loses_updates_on_some_seed(self):
        outcomes = set()
        for seed in range(30):
            def program(rt):
                value = rt.var("value", 0)

                def worker():
                    for _ in range(4):
                        rt.write(value, rt.read(value) + 1)

                workers = [rt.spawn(worker) for _ in range(2)]
                for handle in workers:
                    rt.join(handle)
                rt.check(rt.read(value) == 8, "lost update")

            outcomes.add(bool(run_native(program, seed=seed).crashes))
        assert outcomes == {True, False}

    def test_crash_domain(self):
        def program(rt):
            def bad():
                rt.yield_point()
                raise ValueError("boom")

            handle = rt.spawn(bad)
            rt.join(handle)

        result = run_native(program)
        assert result.exception_types == ["ValueError"]
        assert not result.deadlock

    def test_check_failure(self):
        def program(rt):
            rt.check(False, "nope")

        result = run_native(program)
        assert result.exception_types == ["AssertionViolation"]


class TestMonitors:
    def test_reentrant(self):
        def program(rt):
            lock = rt.lock("L")
            rt.acquire(lock)
            rt.acquire(lock)
            rt.release(lock)
            rt.release(lock)

        assert not run_native(program).crashes

    def test_release_unheld_raises_in_owner(self):
        def program(rt):
            lock = rt.lock("L")
            rt.release(lock)

        result = run_native(program)
        assert result.exception_types == ["IllegalMonitorState"]

    def test_wait_notify(self):
        order = []

        def program(rt):
            lock = rt.lock("L")
            ready = rt.var("ready", 0)

            def consumer():
                rt.acquire(lock)
                while rt.read(ready) == 0:
                    rt.wait(lock)
                order.append("consumed")
                rt.release(lock)

            def producer():
                rt.acquire(lock)
                rt.write(ready, 1)
                order.append("produced")
                rt.notify(lock)
                rt.release(lock)

            handles = [rt.spawn(consumer), rt.spawn(producer)]
            for handle in handles:
                rt.join(handle)

        for seed in range(10):
            order.clear()
            result = run_native(program, seed=seed)
            assert not result.deadlock, f"seed {seed}"
            assert order == ["produced", "consumed"], f"seed {seed}: {order}"

    def test_notify_all(self):
        def program(rt):
            lock = rt.lock("L")
            go = rt.var("go", 0)
            done = rt.var("done", 0)

            def waiter():
                rt.acquire(lock)
                while rt.read(go) == 0:
                    rt.wait(lock)
                rt.write(done, rt.read(done) + 1)
                rt.release(lock)

            handles = [rt.spawn(waiter) for _ in range(3)]
            rt.yield_point()
            rt.acquire(lock)
            rt.write(go, 1)
            rt.notify_all(lock)
            rt.release(lock)
            for handle in handles:
                rt.join(handle)
            rt.check(rt.read(done) == 3, "a waiter was lost")

        for seed in range(10):
            result = run_native(program, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"


class TestDeadlockAndBudget:
    def test_deadlock_detected_and_run_terminates(self):
        def program(rt):
            a, b = rt.lock("A"), rt.lock("B")

            def forward():
                rt.acquire(a)
                rt.yield_point()
                rt.acquire(b)

            def backward():
                rt.acquire(b)
                rt.yield_point()
                rt.acquire(a)

            handles = [rt.spawn(forward), rt.spawn(backward)]
            for handle in handles:
                rt.join(handle)

        deadlocks = sum(run_native(program, seed=s).deadlock for s in range(15))
        assert deadlocks > 0  # some interleavings cross
        # And crucially: every run returned (no hung real threads).

    def test_budget_truncation(self):
        def program(rt):
            x = rt.var("x", 0)
            while True:
                rt.read(x)

        result = run_native(program, max_ops=200)
        assert result.truncated


class TestEventsAndReplay:
    def test_events_match_generator_engine_shapes(self):
        trace = EventTrace()

        def program(rt):
            x = rt.var("x", 0)
            lock = rt.lock("L")
            rt.acquire(lock)
            rt.write(x, 1)
            rt.release(lock)
            rt.read(x)

        runtime = NativeRuntime(seed=0, observers=(trace,))
        runtime.run(program, runtime)
        mems = trace.of_type(MemEvent)
        assert len(mems) == 2
        assert mems[0].is_write and not mems[1].is_write
        assert mems[0].locks_held  # held the monitor during the write
        assert not mems[1].locks_held
        acquires = trace.of_type(AcquireEvent)
        assert len(acquires) == 1
        assert acquires[0].stmt is not None

    def test_statement_identity_is_the_call_site(self):
        trace = EventTrace()

        def program(rt):
            x = rt.var("x", 0)
            rt.write(x, 1)  # line A
            rt.write(x, 2)  # line B

        runtime = NativeRuntime(seed=0, observers=(trace,))
        runtime.run(program, runtime)
        stmts = [event.stmt for event in trace.of_type(MemEvent)]
        assert stmts[0] != stmts[1]
        assert stmts[0].file.endswith("test_native_runtime.py")
        assert stmts[1].line == stmts[0].line + 1

    def test_label_overrides_site(self):
        trace = EventTrace()

        def program(rt):
            x = rt.var("x", 0)
            rt.write(x, 1, label="W1")

        runtime = NativeRuntime(seed=0, observers=(trace,))
        runtime.run(program, runtime)
        (event,) = trace.of_type(MemEvent)
        assert event.stmt.site == "W1"

    def test_seed_replay(self):
        def program(rt):
            x = rt.var("x", 0)

            def worker():
                for _ in range(3):
                    rt.write(x, rt.read(x) + 1)

            handles = [rt.spawn(worker) for _ in range(2)]
            for handle in handles:
                rt.join(handle)
            rt.check(rt.read(x) == 6, "lost")

        def signature(seed):
            result = run_native(program, seed=seed)
            return (result.ops, tuple(result.exception_types))

        for seed in range(6):
            assert signature(seed) == signature(seed)

    def test_runtime_runs_once(self):
        def program(rt):
            rt.yield_point()

        runtime = NativeRuntime(seed=0)
        runtime.run(program, runtime)
        with pytest.raises(Exception):
            runtime.run(program, runtime)
