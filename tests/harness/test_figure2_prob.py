"""Figure 2 probability sweep harness."""

import pytest

from repro.harness.figure2_prob import measure_point, render_sweep, sweep


@pytest.fixture(scope="module")
def points():
    return sweep(paddings=(0, 10), runs=30)


class TestSweep:
    def test_point_fields(self, points):
        for point in points:
            assert 0.0 <= point.rf_race_probability <= 1.0
            assert 0.0 <= point.simple_error_probability <= 1.0

    def test_rf_flat_at_one(self, points):
        assert all(point.rf_race_probability == 1.0 for point in points)

    def test_passive_not_better_than_rf(self, points):
        for point in points:
            assert point.simple_error_probability <= point.rf_error_probability

    def test_render(self, points):
        text = render_sweep(points)
        assert "padding" in text
        assert "RF P(race)" in text
        assert str(points[0].padding) in text


class TestMeasurePoint:
    def test_single_point(self):
        point = measure_point(4, runs=20)
        assert point.padding == 4
        assert point.rf_race_probability == 1.0
        assert 0 <= point.rf_error_probability <= 1
