"""Table 1 harness: one full row measured end-to-end, and rendering."""

import pytest

from repro.harness.table1 import (
    Table1Row,
    build_table,
    measure_row,
    render_comparison,
    render_measured,
)
from repro.workloads import get


@pytest.fixture(scope="module")
def raytracer_row():
    return measure_row(get("raytracer"), trials=20, baseline_runs=10, timing_runs=2)


class TestMeasureRow:
    def test_row_fields(self, raytracer_row):
        row = raytracer_row
        assert isinstance(row, Table1Row)
        assert row.name == "raytracer"
        assert row.sloc > 50  # module line count
        assert row.normal_s > 0
        assert row.hybrid_s > 0
        assert row.racefuzzer_s > 0
        assert row.potential == 2
        assert row.real == 2
        assert row.harmful == 0
        assert row.probability == 1.0
        assert row.campaign is not None

    def test_timing_shape(self, raytracer_row):
        """The paper's qualitative timing claim: hybrid instrumentation
        costs more than an uninstrumented run."""
        assert raytracer_row.hybrid_s > raytracer_row.normal_s


class TestRendering:
    def test_render_measured(self, raytracer_row):
        text = render_measured([raytracer_row])
        assert "raytracer" in text
        assert "Hybrid#" in text
        assert "RF(real)" in text

    def test_render_comparison_contains_paper_values(self, raytracer_row):
        text = render_comparison([raytracer_row])
        assert "2/2" in text  # paper potential / measured potential
        assert "p/m" in text

    def test_build_table_subset(self):
        rows = build_table(
            [get("figure1")] if get("figure1").paper else [get("sor")],
            trials=10,
            baseline_runs=5,
            timing_runs=1,
        )
        assert len(rows) == 1
