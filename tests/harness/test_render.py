"""Text-table rendering."""

from repro.harness.render import format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_two_decimals(self):
        assert format_cell(0.855) == "0.85" or format_cell(0.855) == "0.86"
        assert format_cell(1.0) == "1.00"

    def test_passthrough(self):
        assert format_cell(12) == "12"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["Name", "Value"],
            [["a", 1], ["longer", 23]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All rows equal width.
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_right_aligned_numbers(self):
        text = render_table(["N", "X"], [["a", 5], ["b", 555]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  5".rstrip()) or rows[0].endswith("5")
        assert rows[1].endswith("555")

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert "A" in text
