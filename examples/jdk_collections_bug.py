#!/usr/bin/env python
"""The Section 5.3 JDK bug, as a user of the library would hit it.

"if we call l1.containsAll(l2) and l2.removeAll() in two threads, where l1
and l2 are synchronized LinkedLists (created using
Collections.synchronizedList), then we can get both
ConcurrentModificationException and NoSuchElementException."

The walk below: reproduce the crash with plain random testing, then run
the RaceFuzzer pipeline to pin each exception on a specific racing pair of
statements inside the LinkedList internals — and finally show the JDK's
documented client-side-locking fix makes the program race-free.

Run:  python examples/jdk_collections_bug.py
"""

from collections import Counter

from repro import (
    Execution,
    Program,
    RandomScheduler,
    join_all,
    race_directed_test,
    spawn_all,
)
from repro.jdk import LinkedList, synchronized_list


def build(client_side_locking: bool) -> Program:
    def make():
        l1 = synchronized_list(LinkedList("l1"))
        l2 = synchronized_list(LinkedList("l2"))
        doomed = synchronized_list(LinkedList("doomed"))

        def setup():
            for value in range(4):
                yield from l1.add(value)
                yield from l2.add(value)
            yield from doomed.add(2)

        def searcher():
            if client_side_locking:
                # The fix the JDK docs prescribe: synchronize on the
                # iterated collection's mutex around the bulk call.
                yield l2.mutex.acquire()
                yield from l1.contains_all(l2)
                yield l2.mutex.release()
            else:
                yield from l1.contains_all(l2)  # iterates l2 unlocked!

        def remover():
            yield from l2.remove_all(doomed)

        def main():
            yield from setup()
            threads = yield from spawn_all([searcher, remover])
            yield from join_all(threads)

        return main()

    return Program(
        make, name="containsAll-fixed" if client_side_locking else "containsAll-bug"
    )


def crash_census(program: Program, runs: int = 200) -> Counter:
    census: Counter = Counter()
    for seed in range(runs):
        result = Execution(program, seed=seed).run(RandomScheduler("every"))
        for crash_type in result.exception_types:
            census[crash_type] += 1
    return census


def main() -> None:
    print("=== buggy version: plain random testing, 200 schedules ===")
    census = crash_census(build(client_side_locking=False))
    for crash_type, count in census.items():
        print(f"  {crash_type}: {count} crashing runs")
    print()

    print("=== buggy version: the RaceFuzzer pipeline ===")
    campaign = race_directed_test(
        build(client_side_locking=False), trials=40, phase1_seeds=range(5)
    )
    print(f"potential pairs: {campaign.potential_pairs}, "
          f"real: {len(campaign.real_pairs)}, "
          f"harmful: {len(campaign.harmful_pairs)}")
    for pair in campaign.harmful_pairs:
        verdict = campaign.verdict_for(pair)
        kinds = ", ".join(sorted(verdict.exceptions))
        print(f"  {pair}")
        print(f"      -> {kinds} (p={verdict.probability:.2f})")
    print()
    print("every racing statement is inside linked_list.py — the bug lives")
    print("in the library, exactly as the paper attributes it to")
    print("AbstractCollection/Collections.synchronizedList.")
    print()

    print("=== fixed version (client-side locking), 200 schedules ===")
    census = crash_census(build(client_side_locking=True))
    print(f"  crashes: {dict(census) or 'none'}")
    campaign = race_directed_test(
        build(client_side_locking=True), trials=40, phase1_seeds=range(5)
    )
    print(f"  RaceFuzzer real races: {len(campaign.real_pairs)}")


if __name__ == "__main__":
    main()
