#!/usr/bin/env python
"""Deadlock-directed active testing (the Section 1 generalization).

The target program transfers money between two accounts with per-account
locks taken in argument order — the textbook lock-order inversion.  A
passive scheduler needs the two inner acquisitions to overlap by luck; the
deadlock-directed scheduler postpones threads at the inner acquisitions it
learned from the lock-order graph, so the hold-and-wait cycle forms almost
every run and the engine reports a *real* deadlock (Algorithm 1, lines
30-32: "print ERROR: actual deadlock found").

Run:  python examples/deadlock_fuzzing.py
"""

from repro import (
    DeadlockFuzzer,
    Execution,
    Lock,
    Program,
    RandomScheduler,
    SharedVar,
    detect_lock_order_inversions,
    join_all,
    ops,
    spawn_all,
)


def build() -> Program:
    def make():
        accounts = {name: SharedVar(f"balance[{name}]", 100) for name in "AB"}
        locks = {name: Lock(f"lock[{name}]") for name in "AB"}

        def transfer(source, target, amount, think_time):
            for _ in range(think_time):
                yield ops.yield_point()  # business logic before the transfer
            yield locks[source].acquire()
            yield locks[target].acquire()  # inner acquire: argument order!
            from_balance = yield accounts[source].read()
            to_balance = yield accounts[target].read()
            yield accounts[source].write(from_balance - amount)
            yield accounts[target].write(to_balance + amount)
            yield locks[target].release()
            yield locks[source].release()

        def main():
            threads = yield from spawn_all(
                [
                    lambda: transfer("A", "B", 10, think_time=2),
                    lambda: transfer("B", "A", 20, think_time=8),
                ]
            )
            yield from join_all(threads)

        return main()

    return Program(make, name="transfer")


def main() -> None:
    print("=== Phase 1 analog: lock-order graph from random executions ===")
    report = detect_lock_order_inversions(build(), seeds=range(3))
    for cycle in report.cycles():
        print("cycle:")
        for edge in cycle:
            print(f"    {edge.held} -> {edge.acquired} at {edge.stmt.site}")
    targets = report.target_statements()
    print(f"target statements: {sorted(s.site for s in targets)}")
    print()

    runs = 50
    passive = sum(
        Execution(build(), seed=seed).run(RandomScheduler("every")).deadlock
        for seed in range(runs)
    )
    print(f"passive random scheduler : {passive}/{runs} runs deadlock")

    fuzzer = DeadlockFuzzer(targets)
    directed = sum(fuzzer.run(build(), seed=seed).deadlock for seed in range(runs))
    print(f"deadlock-directed fuzzer : {directed}/{runs} runs deadlock")
    print()
    print("Same seeds, same program — the directed scheduler parks each")
    print("thread holding its outer lock just before the inner acquire, so")
    print("the cycle closes structurally instead of by coincidence.")


if __name__ == "__main__":
    main()
