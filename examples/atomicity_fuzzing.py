#!/usr/bin/env python
"""Atomicity-violation-directed active testing (the Section 1 generalization).

The target is a check-then-act bug with NO data race: an inventory service
reserves stock by (a) checking availability under the lock, (b) releasing
it to do slow payment work, then (c) re-acquiring the lock and committing
the reservation based on the *stale* check.  Every single access is
lock-protected, so race detectors are silent — but the region
(check .. commit-acquire) is not atomic with respect to a rival
reservation.

The AtomicityFuzzer postpones a thread at the region's second lock
acquisition and rivals at theirs, then deterministically serializes the
rival's critical section *inside* the region — forcing the
non-serializable order and overselling the stock.

Run:  python examples/atomicity_fuzzing.py
"""

from repro import (
    AtomicityFuzzer,
    AtomicRegion,
    Execution,
    Lock,
    Program,
    RandomScheduler,
    SharedVar,
    Statement,
    join_all,
    ops,
    spawn_all,
)


def build(payment_latency: int = 6) -> Program:
    def make():
        stock = SharedVar("stock", 1)  # one unit left
        sold = SharedVar("sold", 0)
        lock = Lock("inventory")

        def reserve_slow():
            yield lock.acquire()
            available = yield stock.read(label="check")
            yield lock.release()
            if available >= 1:
                for _ in range(payment_latency):
                    yield ops.yield_point()  # charge the card...
                yield lock.acquire(label="commit-acquire")
                yield stock.write(available - 1)
                count = yield sold.read()
                yield sold.write(count + 1)
                yield lock.release()

        def reserve_fast():
            yield lock.acquire(label="rival-acquire")
            available = yield stock.read()
            if available >= 1:
                yield stock.write(available - 1)
                count = yield sold.read()
                yield sold.write(count + 1)
            yield lock.release()

        def main():
            threads = yield from spawn_all([reserve_slow, reserve_fast])
            yield from join_all(threads)
            total = yield sold.read()
            yield ops.check(total <= 1, f"oversold: {total} units of 1")

        return main()

    return Program(make, name="inventory")


REGION = AtomicRegion(Statement(label="check"), Statement(label="commit-acquire"))
RIVAL = Statement(label="rival-acquire")


def main() -> None:
    from repro.core import detect_atomic_regions

    print("=== Phase 1 analog: mine check-then-act candidates ===")
    for candidate in detect_atomic_regions(build(), seeds=range(3)):
        print(f"  {candidate}")
    print("(the labelled REGION/RIVAL below match the mined pattern)")
    print()

    runs = 50
    passive_oversells = sum(
        bool(Execution(build(), seed=seed).run(RandomScheduler("every")).crashes)
        for seed in range(runs)
    )
    print(f"passive random scheduler : {passive_oversells}/{runs} runs oversell")

    fuzzer = AtomicityFuzzer(REGION, RIVAL)
    outcomes = [fuzzer.run(build(), seed=seed) for seed in range(runs)]
    forced = sum(outcome.created for outcome in outcomes)
    oversold = sum(bool(outcome.crashes) for outcome in outcomes)
    print(f"atomicity-directed fuzzer: {forced}/{runs} interleavings forced, "
          f"{oversold}/{runs} runs oversell")
    print()
    print("Note: there is no data race here — every access is locked — so")
    print("RaceFuzzer proper has nothing to aim at.  The postponing")
    print("scheduler only needs 'a set of statements whose simultaneous")
    print("execution could lead to a concurrency problem' (Section 1), and")
    print("an atomic region plus a rival lock acquisition is such a set.")


if __name__ == "__main__":
    main()
