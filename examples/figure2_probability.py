#!/usr/bin/env python
"""The paper's Figure 2 / Section 3.2 probability experiment (E7).

Sweeps the amount of padding work separating the two racing statements and
measures, per padding value:

* RaceFuzzer's probability of creating the race (claim: 1.0, independent
  of the padding) and of reaching ERROR (claim: 0.5);
* the simple random scheduler's probability of getting the two racing
  statements temporally adjacent, and of reaching ERROR (claim: decays
  towards 0 as the padding grows).

Run:  python examples/figure2_probability.py [--runs N]
"""

import argparse

from repro.harness.figure2_prob import render_sweep, sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=100)
    args = parser.parse_args()

    points = sweep(paddings=(0, 2, 5, 10, 20, 40), runs=args.runs)
    print(render_sweep(points))
    print()
    print("RaceFuzzer's column is flat at 1.00 — the active scheduler walks")
    print("one thread to its racing statement and *postpones* it, so the")
    print("distance between the statements is irrelevant.  The passive")
    print("scheduler's chance of the same alignment halves with every")
    print("statement of padding.")


if __name__ == "__main__":
    main()
