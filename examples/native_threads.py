#!/usr/bin/env python
"""Race-fuzzing *real* Python threads (the native backend).

Everything in the other examples runs on the deterministic generator
engine.  This one drives ordinary ``threading.Thread`` code: the program
below is plain Python — real stacks, real closures, real exception flow —
with its shared accesses routed through a ``NativeRuntime`` handle, which
is this reproduction's analog of CalFuzzer's bytecode instrumentation.

The pipeline is identical: hybrid Phase 1 (the same detector object as on
the generator engine), race-directed Phase 2, seed-only replay.

Run:  python examples/native_threads.py
"""

from repro.native import NativeRuntime, detect_races_native, fuzz_native


def ticket_counter(rt: NativeRuntime) -> None:
    """A web-shop kernel: racy ticket issue, correctly locked revenue."""
    next_ticket = rt.var("next_ticket", 0)
    revenue = rt.var("revenue", 0)
    till = rt.lock("till")
    issued = []

    def sell(price):
        # BUG: ticket numbering is check-then-act without a lock.
        ticket = rt.read(next_ticket, label="ticket-read")
        rt.write(next_ticket, ticket + 1, label="ticket-write")
        issued.append(ticket)
        # Correct: revenue is lock-protected.
        rt.acquire(till)
        rt.write(revenue, rt.read(revenue) + price)
        rt.release(till)

    sellers = [rt.spawn(sell, 10), rt.spawn(sell, 15), rt.spawn(sell, 20)]
    for seller in sellers:
        rt.join(seller)
    rt.check(
        len(set(issued)) == len(issued),
        f"duplicate ticket numbers issued: {sorted(issued)}",
    )


def main() -> None:
    print("=== passive random runs over real threads ===")
    crashes = 0
    for seed in range(50):
        runtime = NativeRuntime(seed=seed)
        crashes += bool(runtime.run(ticket_counter, runtime).crashes)
    print(f"duplicate tickets in {crashes}/50 passive runs")
    print()

    print("=== Phase 1: hybrid detection (same detector as the engine) ===")
    report = detect_races_native(ticket_counter, seeds=range(5))
    print(report)
    print()

    print("=== Phase 2: race-directed scheduling of the real threads ===")
    for pair in report.pairs:
        outcomes = fuzz_native(ticket_counter, pair, seeds=range(50))
        created = sum(1 for o in outcomes if o.pairs_created)
        crashed = sum(1 for o in outcomes if o.crashes)
        print(f"{pair}")
        print(f"    race created {created}/50, duplicate tickets {crashed}/50")
    print()
    print("note the till-protected revenue never shows up: common-lock")
    print("accesses are filtered in Phase 1, exactly as on the engine.")


if __name__ == "__main__":
    main()
