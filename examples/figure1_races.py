#!/usr/bin/env python
"""The paper's Figure 1, end to end (experiment E6).

The program has two hybrid-reported racing pairs:

* ``(5, 7)`` on ``z`` — REAL: RaceFuzzer creates it with probability 1 and
  reaches ERROR1 in about half of the runs (the race is resolved by a fair
  coin);
* ``(1, 10)`` on ``x`` — FALSE ALARM: the accesses are implicitly ordered
  by the lock-protected flag ``y``, so RaceFuzzer can never bring them
  together (Case 1 in Section 3.1).

Run:  python examples/figure1_races.py
"""

from repro import detect_races, fuzz_races
from repro.workloads import figure1


def main() -> None:
    program = figure1.build()

    print("Phase 1 (hybrid detection):")
    report = detect_races(program, seeds=range(5))
    print(report)
    print()

    print("Phase 2 (RaceFuzzer, 100 seeds per pair):")
    verdicts = fuzz_races(program, report.pairs, trials=100)
    for pair, verdict in verdicts.items():
        print(f"  {verdict.describe()}")
    print()

    real = verdicts[figure1.REAL_PAIR]
    false = verdicts[figure1.FALSE_PAIR]
    errors = real.exceptions.get("AssertionViolation", 0)
    print(f"(5,7): created {real.times_created}/100 times, "
          f"ERROR1 reached {errors} times (~50% by the coin flip)")
    print(f"(1,10): created {false.times_created}/100 times — "
          "correctly classified as a false alarm, with zero manual triage")


if __name__ == "__main__":
    main()
