#!/usr/bin/env python
"""Quickstart: write a concurrent program, find its races, classify them.

This walks the full RaceFuzzer pipeline on a small bank-account program
with one real data race (an unlocked balance update) and one false alarm
(a flag-synchronized audit field, the Figure 1 pattern):

1. express the program against the ``repro`` runtime DSL;
2. Phase 1 — hybrid race detection over a few random schedules;
3. Phase 2 — race-directed random testing of every reported pair;
4. replay one error-revealing execution from its seed alone.

Run:  python examples/quickstart.py
"""

from repro import (
    Lock,
    Program,
    SharedVar,
    detect_races,
    join_all,
    ops,
    race_directed_test,
    replay_race,
    spawn_all,
)


def build_program() -> Program:
    """Two tellers post to one account; an auditor snapshots it."""

    def make():
        balance = SharedVar("balance", 100)
        audit_ready = SharedVar("audit_ready", 0)
        audit_total = SharedVar("audit_total", 0)
        flag_lock = Lock("flagLock")

        def teller(amount):
            for _ in range(3):
                # BUG: read-modify-write with no lock — a real race.
                current = yield balance.read()
                yield balance.write(current + amount)

        def auditor():
            # Correct flag-under-lock publication: write the total, then
            # raise the flag.  (Hybrid detectors flag audit_total anyway —
            # a false alarm RaceFuzzer will dismiss.)
            snapshot = yield balance.read()
            yield audit_total.write(snapshot)
            yield flag_lock.acquire()
            yield audit_ready.write(1)
            yield flag_lock.release()

        def reporter():
            while True:
                yield flag_lock.acquire()
                ready = yield audit_ready.read()
                yield flag_lock.release()
                if ready:
                    break
                yield ops.yield_point()
            total = yield audit_total.read()  # ordered by the flag
            yield ops.check(total is not None, "audit lost")

        def main():
            threads = yield from spawn_all(
                [lambda: teller(10), lambda: teller(-10), auditor, reporter]
            )
            yield from join_all(threads)
            final = yield balance.read()
            # With 3 × (+10) and 3 × (-10) the balance must be 100 — unless
            # the race loses an update.
            yield ops.check(final == 100, f"lost update: balance={final}")

        return main()

    return Program(make, name="bank-quickstart")


def main() -> None:
    program = build_program()

    print("=== Phase 1: hybrid race detection ===")
    report = detect_races(program, seeds=range(5))
    print(report)
    print()

    print("=== Phase 2: race-directed random testing (100 runs/pair) ===")
    campaign = race_directed_test(program, trials=100, phase1_seeds=range(5))
    print(campaign)
    print()
    print(f"potential pairs : {campaign.potential_pairs}")
    print(f"real races      : {len(campaign.real_pairs)}")
    print(f"harmful races   : {len(campaign.harmful_pairs)}")
    print(f"exceptions      : {dict(campaign.exception_types)}")
    print()

    real = campaign.real_pairs
    if real:
        pair = real[0]
        print(f"=== Replaying an error-revealing run of: {pair} ===")
        # The lost update surfaces as main's final balance check failing.
        # Find a seed whose race resolution breaks the invariant, then
        # replay it twice: same seed, same schedule, no recording.
        for seed in range(200):
            run = replay_race(program, pair, seed=seed)
            if run.outcome.crashes:
                again = replay_race(program, pair, seed=seed)
                assert run.schedule_signature() == again.schedule_signature()
                crash = run.outcome.crashes[0]
                print(f"seed {seed} reproduces: {crash}")
                print("replayed identically with no recording — just the seed.")
                break
        else:
            print("no error-revealing seed in 200 (the lost update needs "
                  "both tellers mid-update; try more seeds)")


if __name__ == "__main__":
    main()
