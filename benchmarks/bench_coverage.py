"""Schedule-space coverage: uniform walk vs RAPOS vs RaceFuzzer.

Quantifies the Related-Work trade-off on the padded Figure 2 program:

* the passive strategies (uniform walk, RAPOS partial-order sampling)
  spread their budget across the schedule space — dozens of distinct
  partial orders in 60 runs;
* RaceFuzzer *collapses* coverage to a couple of partial orders — by
  design: every run visits the error-prone corner of the space.

Diversity numbers land in ``extra_info``; the assertion pins the collapse
RaceFuzzer's design predicts.
"""

from repro.core import RaceFuzzer, conflict_signature, measure_coverage
from repro.runtime import EventTrace
from repro.workloads import figure2

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))
from core.test_coverage import TestMeasureCoverage  # noqa: E402

PADDING = 8
RUNS = 60


def _counter_program():
    return TestMeasureCoverage.counter_program()


def test_random_walk_coverage(benchmark):
    report = benchmark.pedantic(
        lambda: measure_coverage(
            _counter_program(), strategy="random", seeds=range(RUNS)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["strategy"] = "random-walk"
    benchmark.extra_info["distinct"] = report.distinct_signatures
    benchmark.extra_info["minority_share"] = report.minority_share
    print(f"\n{report} minority_share={report.minority_share:.2f}")


def test_rapos_coverage(benchmark):
    report = benchmark.pedantic(
        lambda: measure_coverage(
            _counter_program(), strategy="rapos", seeds=range(RUNS)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["strategy"] = "rapos"
    benchmark.extra_info["distinct"] = report.distinct_signatures
    benchmark.extra_info["minority_share"] = report.minority_share
    print(f"\n{report} minority_share={report.minority_share:.2f}")


def test_racefuzzer_coverage_collapses(benchmark):
    """Directed testing narrows the explored space — and that is the point:
    every run lands on a schedule exhibiting the race."""

    def campaign():
        fuzzer = RaceFuzzer(figure2.RACING_PAIR)
        signatures = set()
        created = 0
        for seed in range(RUNS):
            trace = EventTrace()
            fuzzer.observers = (trace,)
            outcome = fuzzer.run(figure2.build(PADDING), seed=seed)
            signatures.add(conflict_signature(trace.events))
            created += outcome.created
        return signatures, created

    signatures, created = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = "racefuzzer"
    benchmark.extra_info["distinct"] = len(signatures)
    benchmark.extra_info["races_created"] = created
    print(f"\nracefuzzer: {len(signatures)} distinct partial orders, "
          f"{created}/{RUNS} runs created the race")
    assert created == RUNS
