"""Predictive Phase 1: candidate yield per CPU-second, by detector.

The predictive subsystem's economic claim: on recorded traces, shb/wcp
surface more candidate pairs per CPU-second of *program execution* than
the observed-order hybrid, because prediction multiplies what one
recorded run yields and offline analysis costs no executions.  This
benchmark measures that trade on stored traces for several workloads:

* **pairs/s** — distinct candidate pairs found per CPU-second of
  analysis (record cost amortized across detectors, as in practice);
* **confirmed/s** — Phase-2-confirmed real races per CPU-second of the
  full pipeline (analysis + fuzzing the detector's candidates), the
  end-to-end figure of merit.

Two entry points:

* under pytest (``pytest benchmarks/bench_predict.py --benchmark-only``)
  each detector's offline analysis pass is a ``benchmark`` case;
* as a script (``python benchmarks/bench_predict.py``) it prints the
  comparison and writes ``BENCH_predict.json`` — per-detector pairs,
  analysis CPU-seconds, confirmed races, and the derived rates, with
  environment metadata for the perf trajectory.
"""

import json
import time

from repro.core import fuzz_races
from repro.obs import environment_metadata
from repro.trace import TraceStore, analyze_trace, detect_key
from repro.workloads import get

DETECTORS = ("hybrid", "shb", "wcp", "sample")
WORKLOADS = ("figure1", "sor", "philosophers")
SEEDS = (0, 1, 2)
STEP_CAP = 20_000


def _fill_store(root):
    """Record every (workload, seed) trace once; return paths by workload."""
    store = TraceStore(root)
    paths = {}
    for workload in WORKLOADS:
        spec = get(workload)
        cap = min(spec.max_steps, STEP_CAP)
        paths[workload] = [
            store.ensure(detect_key(spec.name, seed, max_steps=cap), spec.build())
            for seed in SEEDS
        ]
    return paths


def _analyze(paths, detector):
    """One detector over every stored trace; merged pairs + CPU seconds."""
    pairs = set()
    start = time.process_time()
    for workload, trace_paths in paths.items():
        for path in trace_paths:
            report = analyze_trace(path, (detector,))[detector]
            pairs.update((workload, pair) for pair in report.pairs)
    return pairs, time.process_time() - start


def test_offline_analysis_throughput(benchmark, tmp_path):
    paths = _fill_store(tmp_path)

    def all_detectors():
        return {name: _analyze(paths, name)[0] for name in DETECTORS}

    found = benchmark(all_detectors)
    for name in DETECTORS:
        benchmark.extra_info[f"{name}_pairs"] = len(found[name])
    # The superset hierarchy holds on the benchmark corpus too.
    assert found["hybrid"] <= found["shb"] <= found["wcp"]


def main(argv=None):
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--output", default="BENCH_predict.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as root:
        record_start = time.process_time()
        paths = _fill_store(root)
        record_s = time.process_time() - record_start

        per_detector = {}
        for name in DETECTORS:
            pairs, analyze_s = _analyze(paths, name)
            fuzz_start = time.process_time()
            confirmed = 0
            for workload in WORKLOADS:
                spec = get(workload)
                candidates = [p for w, p in pairs if w == workload]
                verdicts = fuzz_races(
                    spec.build(),
                    candidates,
                    trials=args.trials,
                    max_steps=min(spec.max_steps, STEP_CAP),
                )
                confirmed += sum(
                    1 for v in verdicts.values() if v.times_created > 0
                )
            fuzz_s = time.process_time() - fuzz_start
            pipeline_s = analyze_s + fuzz_s
            per_detector[name] = {
                "pairs": len(pairs),
                "analyze_s": round(analyze_s, 4),
                "fuzz_s": round(fuzz_s, 4),
                "confirmed": confirmed,
                "pairs_per_cpu_s": round(len(pairs) / analyze_s, 1)
                if analyze_s
                else None,
                "confirmed_per_cpu_s": round(confirmed / pipeline_s, 3)
                if pipeline_s
                else None,
            }

    hybrid, shb, wcp = (per_detector[n]["pairs"] for n in ("hybrid", "shb", "wcp"))
    assert hybrid <= shb <= wcp, "superset hierarchy violated"

    record = {
        "benchmark": "predictive-phase1",
        "workloads": list(WORKLOADS),
        "seeds": list(SEEDS),
        "trials": args.trials,
        "env": environment_metadata(),
        "record_s": round(record_s, 4),
        "detectors": per_detector,
        "extra_candidates_shb": shb - hybrid,
        "extra_candidates_wcp": wcp - hybrid,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
