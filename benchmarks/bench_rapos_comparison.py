"""The Related-Work comparison, regenerated: RAPOS vs RaceFuzzer.

"RAPOS cannot often discover error-prone schedules with high probability
because the number of partial orders that can be exhibited by a large
concurrent program can be astronomically large.  Therefore, we focused on
testing error-prone schedules."  (Section 6.)

Each benchmark measures one strategy's error-finding rate on the padded
Figure 2 program: uniform random walk, RAPOS partial-order sampling, and
RaceFuzzer.  Rates land in ``extra_info``.
"""

from repro.core import RandomScheduler, RaposDriver, fuzz_pair
from repro.runtime import Execution
from repro.workloads import figure2

PADDING = 16
RUNS = 40


def test_random_walk_error_rate(benchmark):
    def campaign():
        errors = 0
        for seed in range(RUNS):
            result = Execution(figure2.build(PADDING), seed=seed).run(
                RandomScheduler(preemption="every")
            )
            errors += bool(result.crashes)
        return errors / RUNS

    rate = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = "random-walk"
    benchmark.extra_info["error_rate"] = rate
    print(f"\nrandom walk: P(ERROR) = {rate:.2f}")


def test_rapos_error_rate(benchmark):
    def campaign():
        driver = RaposDriver()
        errors = 0
        for seed in range(RUNS):
            result = driver.run(figure2.build(PADDING), seed=seed)
            errors += bool(result.crashes)
        return errors / RUNS

    rate = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = "rapos"
    benchmark.extra_info["error_rate"] = rate
    print(f"\nRAPOS: P(ERROR) = {rate:.2f}")


def test_racefuzzer_error_rate(benchmark):
    def campaign():
        outcomes = fuzz_pair(
            figure2.build(PADDING), figure2.RACING_PAIR, seeds=range(RUNS)
        )
        return sum(1 for outcome in outcomes if outcome.crashes) / RUNS

    rate = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info["strategy"] = "racefuzzer"
    benchmark.extra_info["error_rate"] = rate
    print(f"\nRaceFuzzer: P(ERROR) = {rate:.2f}")
    assert rate >= 0.25
