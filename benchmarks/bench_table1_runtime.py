"""Experiment E1 — Table 1, columns 3-5: Normal / Hybrid / RaceFuzzer runtime.

One benchmark per (workload, configuration): the uninstrumented run, the
hybrid-instrumented run, and a RaceFuzzer run directed at the workload's
first potentially racing pair.  The paper's qualitative claim to check in
the output: Normal <= RaceFuzzer << Hybrid for the compute-heavy kernels
(moldyn, montecarlo, raytracer), and all three close together for the
I/O-shaped programs.
"""

import pytest

from repro.core import RaceFuzzer, RandomScheduler, detect_races
from repro.detectors import HybridRaceDetector
from repro.runtime import Execution
from repro.workloads import get

#: a representative slice of Table 1: two compute kernels, one server-ish
#: program, one collection driver (full table: python -m repro.harness.table1)
WORKLOADS = ["moldyn", "raytracer", "weblech", "linkedlist"]


def _normal_run(spec):
    seed = [0]

    def run():
        seed[0] += 1
        Execution(spec.build(), seed=seed[0], max_steps=spec.max_steps).run(
            RandomScheduler(preemption="sync")
        )

    return run


def _hybrid_run(spec):
    seed = [0]

    def run():
        seed[0] += 1
        Execution(
            spec.build(),
            seed=seed[0],
            observers=[HybridRaceDetector()],
            max_steps=spec.max_steps,
        ).run(RandomScheduler(preemption="every"))

    return run


def _racefuzzer_run(spec, pair):
    seed = [0]
    fuzzer = RaceFuzzer(pair, max_steps=spec.max_steps)

    def run():
        seed[0] += 1
        fuzzer.run(spec.build(), seed=seed[0])

    return run


@pytest.mark.parametrize("name", WORKLOADS)
def test_normal_runtime(benchmark, name):
    spec = get(name)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["column"] = "Normal"
    benchmark(_normal_run(spec))


@pytest.mark.parametrize("name", WORKLOADS)
def test_hybrid_runtime(benchmark, name):
    spec = get(name)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["column"] = "Hybrid"
    benchmark(_hybrid_run(spec))


@pytest.mark.parametrize("name", WORKLOADS)
def test_racefuzzer_runtime(benchmark, name):
    spec = get(name)
    pairs = detect_races(spec.build(), seeds=(0,), max_steps=spec.max_steps).pairs
    assert pairs, f"{name}: no pairs to direct at"
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["column"] = "RaceFuzzer"
    benchmark.extra_info["pair"] = str(pairs[0])
    benchmark(_racefuzzer_run(spec, pairs[0]))
