"""Parallel campaign engine: serial-vs-parallel wall clock, merge overhead.

Measures the multi-pair Phase-2 campaign (the paper's "embarrassingly
parallel" workload) serially and across a process pool, plus the cost of
the parent-side deterministic merge, and records the observed speedup.

Two entry points:

* under pytest (``pytest benchmarks/bench_parallel.py --benchmark-only``)
  each configuration is a ``benchmark`` case;
* as a script (``python benchmarks/bench_parallel.py [--jobs N]``) it
  prints the comparison and writes a ``BENCH_parallel.json`` speedup
  record for the perf trajectory.

Speedup scales with available cores: on a single-core container the pool
only adds overhead, so the JSON record carries ``cpu_count`` alongside
the ratio to keep the trajectory interpretable.
"""

import json
import os
import time

from repro.core import fuzz_races
from repro.core.parallel import FuzzTask, chunk_ranges, run_fuzz_task
from repro.core.results import PairVerdict
from repro.obs import environment_metadata
from repro.workloads import figure1

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]


def _campaign(jobs, trials, chunk_size=5):
    return fuzz_races(
        figure1.build(),
        PAIRS,
        trials=trials,
        jobs=jobs,
        chunk_size=chunk_size,
    )


def test_serial_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _campaign(jobs=1, trials=quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real


def test_parallel_campaign(benchmark, quick_trials):
    jobs = min(4, os.cpu_count() or 1)
    verdicts = benchmark(lambda: _campaign(jobs=jobs, trials=quick_trials))
    benchmark.extra_info["jobs"] = jobs
    assert verdicts[figure1.REAL_PAIR].is_real


def test_merge_overhead(benchmark):
    """Parent-side reduction cost: merging chunk verdicts is ~free."""
    chunks = [
        run_fuzz_task(
            FuzzTask(workload="figure1", pair=figure1.REAL_PAIR,
                     seed_start=start, count=count)
        )
        for start, count in chunk_ranges(0, 40, 5)
    ]

    def merge():
        merged = PairVerdict(pair=figure1.REAL_PAIR)
        for chunk in chunks:
            merged.merge(chunk)
        return merged

    merged = benchmark(merge)
    assert merged.trials == 40


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--jobs", type=int, default=min(4, os.cpu_count() or 1))
    parser.add_argument("--chunk-size", type=int, default=5)
    parser.add_argument("--output", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    serial = _campaign(jobs=1, trials=args.trials, chunk_size=args.chunk_size)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _campaign(
        jobs=args.jobs, trials=args.trials, chunk_size=args.chunk_size
    )
    parallel_s = time.perf_counter() - start

    # The acceptance bar: identical aggregates, whatever the fan-out.
    for pair in serial:
        assert serial[pair].trials == parallel[pair].trials
        assert serial[pair].times_created == parallel[pair].times_created
        assert serial[pair].exceptions == parallel[pair].exceptions

    chunks = [
        run_fuzz_task(
            FuzzTask(workload="figure1", pair=figure1.REAL_PAIR,
                     seed_start=chunk_start, count=count)
        )
        for chunk_start, count in chunk_ranges(0, args.trials, args.chunk_size)
    ]
    start = time.perf_counter()
    merged = PairVerdict(pair=figure1.REAL_PAIR)
    for chunk in chunks:
        merged.merge(chunk)
    merge_s = time.perf_counter() - start

    record = {
        "benchmark": "parallel-campaign",
        "workload": "figure1",
        "pairs": len(PAIRS),
        "trials_per_pair": args.trials,
        "chunk_size": args.chunk_size,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "env": environment_metadata(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "merge_overhead_s": round(merge_s, 6),
        "verdicts_identical": True,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
