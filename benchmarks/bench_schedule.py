"""Campaign scheduling policies: fixed-vs-adaptive trials-to-confirmation.

Measures what the adaptive bandit allocator buys over the paper's fixed
protocol on a workload with one real race and one false alarm: the total
trials and wall-clock each policy spends to reach the same set of
confirmed races.  The fixed policy pays ``trials`` per pair regardless of
evidence; the adaptive policy retires the real race after one confirming
chunk and early-stops the false alarm once its posterior upper bound
sinks below threshold.

Two entry points:

* under pytest (``pytest benchmarks/bench_schedule.py --benchmark-only``)
  each policy is a ``benchmark`` case;
* as a script (``python benchmarks/bench_schedule.py [--trials N]``) it
  prints the comparison and writes a ``BENCH_schedule.json`` record —
  trials spent, wall clock, trial savings ratio, and a determinism check
  (two adaptive runs with the same seed must produce identical verdicts)
  — with environment metadata for the perf trajectory.
"""

import json
import time

from repro.core import fuzz_races
from repro.workloads import figure1

from repro.obs import environment_metadata

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]


def _campaign(schedule, trials, chunk_size=5, seed=0):
    return fuzz_races(
        figure1.build(),
        PAIRS,
        trials=trials,
        base_seed=seed,
        chunk_size=chunk_size,
        schedule=schedule,
    )


def _confirmed(verdicts):
    return {str(pair) for pair, v in verdicts.items() if v.times_created}


def _total_trials(verdicts):
    return sum(v.trials for v in verdicts.values())


def test_fixed_schedule(benchmark, quick_trials):
    verdicts = benchmark(lambda: _campaign("fixed", trials=quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real


def test_adaptive_schedule(benchmark, quick_trials):
    verdicts = benchmark(lambda: _campaign("adaptive", trials=quick_trials))
    benchmark.extra_info["total_trials"] = _total_trials(verdicts)
    assert verdicts[figure1.REAL_PAIR].is_real


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--chunk-size", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_schedule.json")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    fixed = _campaign("fixed", args.trials, args.chunk_size, args.seed)
    fixed_s = time.perf_counter() - start

    start = time.perf_counter()
    adaptive = _campaign("adaptive", args.trials, args.chunk_size, args.seed)
    adaptive_s = time.perf_counter() - start

    rerun = _campaign("adaptive", args.trials, args.chunk_size, args.seed)

    # The acceptance bar: same races confirmed, fewer trials spent, and
    # the adaptive campaign is reproducible from its seed.
    assert _confirmed(adaptive) == _confirmed(fixed)
    assert _total_trials(adaptive) < _total_trials(fixed)
    deterministic = all(
        (adaptive[p].trials, adaptive[p].times_created)
        == (rerun[p].trials, rerun[p].times_created)
        for p in PAIRS
    )
    assert deterministic

    fixed_trials = _total_trials(fixed)
    adaptive_trials = _total_trials(adaptive)
    record = {
        "benchmark": "campaign-schedule",
        "workload": "figure1",
        "pairs": len(PAIRS),
        "trials_per_pair": args.trials,
        "chunk_size": args.chunk_size,
        "seed": args.seed,
        "env": environment_metadata(),
        "confirmed": sorted(_confirmed(adaptive)),
        "fixed_trials": fixed_trials,
        "adaptive_trials": adaptive_trials,
        "trial_savings": round(1.0 - adaptive_trials / fixed_trials, 3),
        "fixed_s": round(fixed_s, 4),
        "adaptive_s": round(adaptive_s, 4),
        "wall_speedup": round(fixed_s / adaptive_s, 3) if adaptive_s else None,
        "adaptive_deterministic": deterministic,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
