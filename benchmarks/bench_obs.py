"""Observability overhead: campaign wall clock with metrics off vs on.

The metrics registry is designed to cost one ``None``-check per
instrumented site when disabled (the default), and a handful of dict
operations per *execution* — not per step — when enabled.  This
benchmark quantifies both:

* ``disabled`` — the stock campaign, registry inactive (what ``table1``
  and every other un-flagged entry point runs); the acceptance bar is
  that this regresses < 2% against the pre-observability baseline;
* ``enabled`` — the same campaign under ``collecting()``, measuring the
  full per-execution fold cost;
* ``timeline`` — the same campaign under ``recording_timeline()``
  (``--timeline-out``), measuring the per-chunk/per-trial event cost;
  the bar is <= 15% over the disabled arm.

Two entry points:

* under pytest (``pytest benchmarks/bench_obs.py --benchmark-only``)
  each configuration is a ``benchmark`` case;
* as a script (``python benchmarks/bench_obs.py``) it prints the
  comparison and writes a ``BENCH_obs.json`` overhead record for the
  perf trajectory.
"""

import json
import os
import time

from repro.core import detect_races, fuzz_races
from repro.obs import collecting, environment_metadata, recording_timeline
from repro.workloads import figure1

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]


def _campaign(trials):
    phase1 = detect_races(figure1.build(), seeds=range(3), max_steps=20_000)
    verdicts = fuzz_races(
        figure1.build(), phase1.pairs, trials=trials, max_steps=20_000
    )
    return phase1, verdicts


def _time_campaign(trials, *, repeats, metered=False, timed=False):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        if metered:
            with collecting():
                _campaign(trials)
        elif timed:
            with recording_timeline():
                _campaign(trials)
        else:
            _campaign(trials)
        best = min(best, time.perf_counter() - start)
    return best


def test_campaign_metrics_disabled(benchmark, quick_trials):
    _, verdicts = benchmark(lambda: _campaign(quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real


def test_campaign_metrics_enabled(benchmark, quick_trials):
    def metered():
        with collecting() as registry:
            result = _campaign(quick_trials)
        return result, registry.snapshot()

    (_, verdicts), snapshot = benchmark(metered)
    assert verdicts[figure1.REAL_PAIR].is_real
    assert snapshot.counters["fuzz.trials"] == 2 * quick_trials
    benchmark.extra_info["counters"] = len(snapshot.counters)


def test_campaign_timeline_enabled(benchmark, quick_trials):
    def timed():
        with recording_timeline() as recorder:
            result = _campaign(quick_trials)
        return result, recorder.snapshot()

    (_, verdicts), snapshot = benchmark(timed)
    assert verdicts[figure1.REAL_PAIR].is_real
    assert any(event.kind == "chunk" for event in snapshot.events)
    benchmark.extra_info["events"] = len(snapshot.events)


def test_registry_inc(benchmark):
    """The hot-path primitive: one enabled counter increment."""
    with collecting() as registry:
        benchmark(lambda: registry.inc("bench.counter"))


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    # Interleave-free warmup so both arms measure hot code.
    _campaign(5)

    disabled_s = _time_campaign(args.trials, repeats=args.repeats)
    enabled_s = _time_campaign(args.trials, repeats=args.repeats, metered=True)
    timeline_s = _time_campaign(args.trials, repeats=args.repeats, timed=True)

    with collecting() as registry:
        _campaign(args.trials)
    snapshot = registry.snapshot()

    with recording_timeline() as recorder:
        _campaign(args.trials)
    timeline = recorder.snapshot()

    record = {
        "benchmark": "observability-overhead",
        "workload": "figure1",
        "pairs": len(PAIRS),
        "trials_per_pair": args.trials,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "env": environment_metadata(),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead_ratio": (
            round(enabled_s / disabled_s, 3) if disabled_s else None
        ),
        "timeline_s": round(timeline_s, 4),
        "timeline_overhead_ratio": (
            round(timeline_s / disabled_s, 3) if disabled_s else None
        ),
        "timeline_events": len(timeline.events),
        "counters_collected": len(snapshot.counters),
        "spans_collected": len(snapshot.spans),
        "interp_executions": snapshot.counters.get("interp.executions", 0),
        "interp_steps": snapshot.counters.get("interp.steps", 0),
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
