"""Experiments E2-E5 — Table 1, columns 6-11: the detection/classification
columns, regenerated per benchmark row.

The timed body is one full two-phase campaign (Phase 1 over the spec's
seeds + Phase 2 with a reduced trial count); the regenerated row — the
potential/real/harmful counts, passive-scheduler exceptions, and the mean
race-creation probability — is attached as ``extra_info`` and printed, so
``pytest benchmarks/bench_table1_detection.py --benchmark-only -s``
reproduces the paper's table shape row by row.
"""

import pytest

from repro.harness.table1 import measure_row
from repro.workloads import table1_workloads

ROWS = table1_workloads()


@pytest.mark.parametrize("spec", ROWS, ids=lambda s: s.name)
def test_table1_row(benchmark, spec, quick_trials):
    def campaign():
        return measure_row(
            spec, trials=quick_trials, baseline_runs=10, timing_runs=1
        )

    row = benchmark.pedantic(campaign, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "workload": spec.name,
            "potential": row.potential,
            "real": row.real,
            "harmful": row.harmful,
            "simple_exceptions": row.exceptions_simple,
            "probability": row.probability,
            "paper_potential": spec.paper.hybrid_races,
            "paper_real": spec.paper.real_races,
            "paper_exceptions": spec.paper.exceptions_rf,
        }
    )
    print(
        f"\n{spec.name}: potential={row.potential} (paper {spec.paper.hybrid_races}) "
        f"real={row.real} (paper {spec.paper.real_races}) "
        f"harmful={row.harmful} (paper {spec.paper.exceptions_rf}) "
        f"prob={row.probability}"
    )
    # Structural sanity that must hold for every row we publish:
    assert row.real <= row.potential + 2  # self-races can add pairs
    assert row.harmful <= row.real
