"""Experiment E10 — ablations of the design choices DESIGN.md calls out.

* **Preemption points** (Section 4, citing Musuvathi & Qadeer): RaceFuzzer
  switching only at sync ops + racing statements vs at every statement.
* **Phase 1 detector choice**: hybrid vs precise happens-before vs Eraser
  lockset — cost of one instrumented run, and the pair counts each feeds
  to Phase 2 (coverage/precision trade-off).
* **Watchdog patience**: how the livelock-breaker threshold affects the
  runtime of a fuzzing run on a spin-wait workload (moldyn).
"""

import pytest

from repro.core import RaceFuzzer, RandomScheduler, detect_races
from repro.detectors import (
    EraserLocksetDetector,
    HappensBeforeDetector,
    HybridRaceDetector,
)
from repro.runtime import Execution
from repro.workloads import figure2, get


class TestPreemptionAblation:
    @pytest.mark.parametrize("preemption", ["sync", "every"])
    def test_racefuzzer_preemption(self, benchmark, preemption):
        spec = get("moldyn")
        pair = detect_races(spec.build(), seeds=(0,)).pairs[0]
        fuzzer = RaceFuzzer(pair, preemption=preemption, max_steps=spec.max_steps)
        seed = [0]

        def run():
            seed[0] += 1
            return fuzzer.run(spec.build(), seed=seed[0])

        benchmark.extra_info["preemption"] = preemption
        benchmark(run)


class TestDetectorAblation:
    DETECTORS = {
        "hybrid": HybridRaceDetector,
        "happens-before": HappensBeforeDetector,
        "lockset": EraserLocksetDetector,
    }

    @pytest.mark.parametrize("detector_name", sorted(DETECTORS))
    def test_phase1_detector_cost(self, benchmark, detector_name):
        spec = get("weblech")
        detector_cls = self.DETECTORS[detector_name]
        seed = [0]

        def run():
            seed[0] += 1
            detector = detector_cls()
            Execution(
                spec.build(), seed=seed[0], observers=[detector],
                max_steps=spec.max_steps,
            ).run(RandomScheduler(preemption="every"))
            return detector.report

        report = benchmark(run)
        benchmark.extra_info["detector"] = detector_name
        benchmark.extra_info["pairs_reported"] = len(report)
        print(f"\n{detector_name}: {len(report)} pairs on weblech")

    def test_detector_coverage_ordering(self):
        """Precision/coverage shape on one run set: precise-HB reports the
        fewest pairs, lockset-only does not report fewer than HB."""
        spec = get("weblech")
        counts = {}
        for name, cls in self.DETECTORS.items():
            merged = None
            for seed in range(3):
                detector = cls()
                Execution(
                    spec.build(), seed=seed, observers=[detector],
                    max_steps=spec.max_steps,
                ).run(RandomScheduler(preemption="every"))
                if merged is None:
                    merged = detector.report
                else:
                    merged.merge(detector.report)
            counts[name] = len(merged)
        assert counts["happens-before"] <= counts["hybrid"]


class TestWatchdogAblation:
    @pytest.mark.parametrize("patience", [100, 400, 1600])
    def test_watchdog_patience(self, benchmark, patience):
        """Spin-wait workload: small patience unwedges livelocks quickly,
        large patience lets postponed threads wait longer for a partner."""
        program_pair = detect_races(get("moldyn").build(), seeds=(0,)).pairs[0]
        fuzzer = RaceFuzzer(program_pair, patience=patience, max_steps=500_000)
        seed = [0]

        def run():
            seed[0] += 1
            return fuzzer.run(get("moldyn").build(), seed=seed[0])

        outcome = benchmark(run)
        benchmark.extra_info["patience"] = patience
        benchmark.extra_info["watchdog_releases"] = outcome.watchdog_releases


class TestPostponementCostShape:
    def test_padding_does_not_scale_racefuzzer_work(self, benchmark):
        """The Figure 2 claim, as a cost statement: RaceFuzzer's work grows
        linearly with program length but its PROBABILITY stays 1 — measure
        a long-padding run to pair with bench_figure2_probability."""
        fuzzer = RaceFuzzer(figure2.RACING_PAIR)
        seed = [0]

        def run():
            seed[0] += 1
            return fuzzer.run(figure2.build(60), seed=seed[0])

        outcome = benchmark(run)
        assert outcome.created
