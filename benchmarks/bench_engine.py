"""Substrate microbenchmarks: the abstract machine itself.

Not a paper artifact, but the denominator of every Table 1 ratio: ops/sec
of the engine with no observers, with a tracing observer, and across the
synchronization primitives.  Useful for spotting regressions that would
distort the timing columns.

Run as a module (``python benchmarks/bench_engine.py``) to measure the
three interpreter configurations the hot-path overhaul targets — full
(tracing observer), disabled-observer, and Phase-2 fast mode — and write
the steps/sec record to ``BENCH_engine.json`` (same env-metadata shape as
``BENCH_obs.json``).  The pytest-benchmark tests below remain the
fine-grained per-primitive view.
"""

import json
import os
import tempfile
import time

from repro.core import DefaultScheduler, RaceFuzzer, RandomScheduler
from repro.obs import environment_metadata
from repro.runtime import (
    Barrier,
    EventTrace,
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.runtime.statement import Statement, StatementPair


def _counter_program(iterations=200, threads=2, locked=True):
    def make():
        value = SharedVar("value", 0)
        lock = Lock("L")

        def worker():
            for _ in range(iterations):
                if locked:
                    yield lock.acquire()
                current = yield value.read()
                yield value.write(current + 1)
                if locked:
                    yield lock.release()

        def main():
            handles = yield from spawn_all([worker] * threads)
            yield from join_all(handles)

        return main()

    return Program(make, name="counter")


def test_plain_memory_ops(benchmark):
    program = _counter_program(locked=False)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("sync"))

    result = benchmark(run)
    benchmark.extra_info["steps"] = result.steps


def test_locked_memory_ops(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    benchmark.extra_info["steps"] = result.steps


def test_observer_overhead(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        trace = EventTrace()
        return Execution(program, seed=seed[0], observers=[trace]).run(
            RandomScheduler("every")
        )

    benchmark(run)


def test_default_scheduler(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(DefaultScheduler())

    benchmark(run)


def test_wait_notify_throughput(benchmark):
    def make():
        lock = Lock("L")
        turn = SharedVar("turn", 0)

        def ping(me, other, rounds=60):
            for _ in range(rounds):
                yield lock.acquire()
                while (yield turn.read()) != me:
                    yield lock.wait()
                yield turn.write(other)
                yield lock.notify()
                yield lock.release()

        def main():
            handles = yield from spawn_all(
                [lambda: ping(0, 1), lambda: ping(1, 0)]
            )
            yield from join_all(handles)

        return main()

    program = Program(make, name="pingpong")
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    assert not result.deadlock


def _racing_program(iterations=300):
    """A labelled racing pair at the end of heavy off-pair memory traffic —
    the shape fast mode is built for (few target statements, many noise
    accesses an observer would otherwise have to swallow)."""

    def make():
        x = SharedVar("x", 0)
        y = SharedVar("y", 0)

        def writer():
            for _ in range(iterations):
                current = yield y.read()
                yield y.write(current + 1)
            yield x.write(1, label="racy-w")

        def reader():
            for _ in range(iterations):
                current = yield y.read()
                yield y.write(current + 1)
            yield x.read(label="racy-r")

        def main():
            handles = yield from spawn_all([writer, reader], prefix="t")
            yield from join_all(handles)

        return main()

    return Program(make, name="bench-racing")


RACING_PAIR = StatementPair(Statement(label="racy-w"), Statement(label="racy-r"))


def _measure(run_once, repeats):
    """Best steps/sec over ``repeats`` timed calls of ``run_once``."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        steps = run_once()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, steps / elapsed)
    return best


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=1000)
    parser.add_argument("--executions", type=int, default=10)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    program = _counter_program(iterations=args.iterations, locked=False)

    def engine_run(observed):
        total = 0
        for seed in range(args.executions):
            observers = [EventTrace()] if observed else []
            result = Execution(program, seed=seed, observers=observers).run(
                RandomScheduler("sync")
            )
            total += result.steps
        return total

    racing = _racing_program(iterations=args.iterations // 2)

    def fuzz_run(fast_mode, trace_dir):
        # The record-while-fuzzing configuration (Phase 2 with a
        # TraceRecorder attached) — the case fast mode exists for:
        # suppressed MemEvents skip construction *and* serialization.
        from repro.trace.io import TraceRecorder

        recorder = TraceRecorder(
            os.path.join(trace_dir, f"bench-{int(fast_mode)}.jsonl")
        )
        fuzzer = RaceFuzzer(
            RACING_PAIR, observers=[recorder], fast_mode=fast_mode
        )
        total = 0
        for seed in range(args.trials):
            total += fuzzer.run(racing, seed=seed).result.steps
        return total

    with tempfile.TemporaryDirectory() as trace_dir:
        # Warm every arm once so all measure hot (interned, precompiled)
        # code.
        engine_run(False), engine_run(True)
        fuzz_run(False, trace_dir), fuzz_run(True, trace_dir)

        disabled = _measure(lambda: engine_run(False), args.repeats)
        full = _measure(lambda: engine_run(True), args.repeats)
        fuzz_full = _measure(lambda: fuzz_run(False, trace_dir), args.repeats)
        fuzz_fast = _measure(lambda: fuzz_run(True, trace_dir), args.repeats)

    record = {
        "benchmark": "engine-hot-path",
        "workload": "counter / bench-racing",
        "iterations": args.iterations,
        "executions": args.executions,
        "trials": args.trials,
        "repeats": args.repeats,
        "env": environment_metadata(),
        # Pre-overhaul reference on this container (same bench, same
        # workload, measured at the commit before the dispatch rewrite).
        "baseline_disabled_steps_per_s": 64266,
        "disabled_observer_steps_per_s": round(disabled),
        "full_observer_steps_per_s": round(full),
        "speedup_vs_baseline": round(disabled / 64266, 2),
        "fuzz_observer": "trace-recorder",
        "fuzz_full_mode_steps_per_s": round(fuzz_full),
        "fuzz_fast_mode_steps_per_s": round(fuzz_fast),
        "fast_mode_speedup": round(fuzz_fast / fuzz_full, 2) if fuzz_full else None,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


def test_barrier_throughput(benchmark):
    def make():
        barrier = Barrier(3)

        def worker(phases=30):
            for _ in range(phases):
                yield from barrier.wait_for_all()

        def main():
            handles = yield from spawn_all([worker] * 3)
            yield from join_all(handles)

        return main()

    program = Program(make, name="barrier")
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    assert not result.deadlock


if __name__ == "__main__":
    main()
