"""Substrate microbenchmarks: the abstract machine itself.

Not a paper artifact, but the denominator of every Table 1 ratio: ops/sec
of the engine with no observers, with a tracing observer, and across the
synchronization primitives.  Useful for spotting regressions that would
distort the timing columns.
"""

from repro.core import DefaultScheduler, RandomScheduler
from repro.runtime import (
    Barrier,
    EventTrace,
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)


def _counter_program(iterations=200, threads=2, locked=True):
    def make():
        value = SharedVar("value", 0)
        lock = Lock("L")

        def worker():
            for _ in range(iterations):
                if locked:
                    yield lock.acquire()
                current = yield value.read()
                yield value.write(current + 1)
                if locked:
                    yield lock.release()

        def main():
            handles = yield from spawn_all([worker] * threads)
            yield from join_all(handles)

        return main()

    return Program(make, name="counter")


def test_plain_memory_ops(benchmark):
    program = _counter_program(locked=False)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("sync"))

    result = benchmark(run)
    benchmark.extra_info["steps"] = result.steps


def test_locked_memory_ops(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    benchmark.extra_info["steps"] = result.steps


def test_observer_overhead(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        trace = EventTrace()
        return Execution(program, seed=seed[0], observers=[trace]).run(
            RandomScheduler("every")
        )

    benchmark(run)


def test_default_scheduler(benchmark):
    program = _counter_program(locked=True)
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(DefaultScheduler())

    benchmark(run)


def test_wait_notify_throughput(benchmark):
    def make():
        lock = Lock("L")
        turn = SharedVar("turn", 0)

        def ping(me, other, rounds=60):
            for _ in range(rounds):
                yield lock.acquire()
                while (yield turn.read()) != me:
                    yield lock.wait()
                yield turn.write(other)
                yield lock.notify()
                yield lock.release()

        def main():
            handles = yield from spawn_all(
                [lambda: ping(0, 1), lambda: ping(1, 0)]
            )
            yield from join_all(handles)

        return main()

    program = Program(make, name="pingpong")
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    assert not result.deadlock


def test_barrier_throughput(benchmark):
    def make():
        barrier = Barrier(3)

        def worker(phases=30):
            for _ in range(phases):
                yield from barrier.wait_for_all()

        def main():
            handles = yield from spawn_all([worker] * 3)
            yield from join_all(handles)

        return main()

    program = Program(make, name="barrier")
    seed = [0]

    def run():
        seed[0] += 1
        return Execution(program, seed=seed[0]).run(RandomScheduler("every"))

    result = benchmark(run)
    assert not result.deadlock
