"""Experiment E9 — seed-only replay: cost and fidelity.

The paper's replay needs no event recording; a replay is just a re-run.
These benchmarks measure (a) a bare race-revealing run, (b) the same run
with full event tracing attached — the price one pays only when actually
debugging — and assert trace-level fidelity inside the timed body.
"""

from repro.core import RaceFuzzer
from repro.core.replay import replay_race
from repro.workloads import figure1, figure2


def test_replay_bare_run(benchmark):
    fuzzer = RaceFuzzer(figure1.REAL_PAIR)

    def run():
        return fuzzer.run(figure1.build(), seed=7)

    outcome = benchmark(run)
    assert outcome.created


def test_replay_with_tracing(benchmark):
    def run():
        return replay_race(figure1.build(), figure1.REAL_PAIR, seed=7)

    replayed = benchmark(run)
    assert replayed.events
    benchmark.extra_info["events"] = len(replayed.events)


def test_replay_fidelity_large_program(benchmark):
    """Replay fidelity on the padded Figure 2 program: two traced runs of
    one seed must agree event for event."""

    def run():
        first = replay_race(figure2.build(30), figure2.RACING_PAIR, seed=3)
        second = replay_race(figure2.build(30), figure2.RACING_PAIR, seed=3)
        assert first.schedule_signature() == second.schedule_signature()
        return first

    replayed = benchmark(run)
    benchmark.extra_info["events"] = len(replayed.events)
