"""Supervisor overhead: what does the failure story cost a clean campaign?

The campaign supervisor wraps every task in a deadline/retry/quarantine
envelope and (optionally) a checkpoint journal.  On a fault-free campaign
all of that machinery is pure overhead, so this benchmark measures the
same Phase-2 campaign three ways:

* the bare serial loop (no supervision at all);
* the supervised inline path (deadline + retry armed, no faults fire);
* the governed inline path (supervision plus a per-task memory budget
  that never fires — the ISSUE-7 resource-governance clean path);
* a supervised run with injected transient faults (one crash, one hang,
  one malformed result), which pays real retry work.

It also times the trace store's durability machinery on its clean path:
recording with the always-on CRC32 checksum, and recording under a disk
budget that never evicts (every publish pays one stat pass).

Two entry points:

* under pytest (``pytest benchmarks/bench_resilience.py --benchmark-only``)
  each configuration is a ``benchmark`` case;
* as a script (``python benchmarks/bench_resilience.py``) it prints the
  comparison and writes a ``BENCH_resilience.json`` overhead record for
  the perf trajectory.
"""

import json
import os
import time

from repro.core import fuzz_races
from repro.core.faults import FaultPlan, FaultSpec
from repro.obs import environment_metadata
from repro.workloads import figure1

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]

#: Transient faults only — every retry succeeds, nothing is quarantined,
#: so the faulted campaign's verdicts still match the bare run.
FAULTS = FaultPlan(
    [
        FaultSpec(kind="crash", index=0, attempts=1),
        FaultSpec(kind="hang", index=2, attempts=1, delay=0.3),
        FaultSpec(kind="malformed", index=4, attempts=1),
    ]
)


def _bare(trials):
    return fuzz_races(figure1.build(), PAIRS, trials=trials)


def _supervised(trials, faults=None, chunk_size=5, memory_budget_mb=None):
    return fuzz_races(
        figure1.build(),
        PAIRS,
        trials=trials,
        chunk_size=chunk_size,
        deadline=10.0,
        retries=2,
        faults=faults,
        memory_budget_mb=memory_budget_mb,
    )


def _store_round(trace_dir, seeds, **store_kwargs):
    """Record ``seeds`` fresh traces and integrity-read each one back."""
    from repro.trace import TraceStore, detect_key, verify_trace

    store = TraceStore(trace_dir, **store_kwargs)
    for seed in range(seeds):
        path = store.ensure(
            detect_key("figure1", seed, max_steps=10_000), figure1.build()
        )
        verify_trace(path)


def test_bare_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _bare(quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real


def test_supervised_clean_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _supervised(quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real
    assert not any(v.quarantined for v in verdicts.values())


def test_governed_clean_campaign(benchmark, quick_trials):
    verdicts = benchmark(
        lambda: _supervised(quick_trials, memory_budget_mb=4096)
    )
    assert verdicts[figure1.REAL_PAIR].is_real
    assert not any(v.quarantined for v in verdicts.values())


def test_supervised_faulted_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _supervised(quick_trials, faults=FAULTS))
    assert verdicts[figure1.REAL_PAIR].is_real
    assert not any(v.quarantined for v in verdicts.values())


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--chunk-size", type=int, default=5)
    parser.add_argument(
        "--store-seeds",
        type=int,
        default=8,
        help="fresh traces per store-overhead round",
    )
    parser.add_argument("--output", default="BENCH_resilience.json")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    bare = _bare(args.trials)
    bare_s = time.perf_counter() - start

    start = time.perf_counter()
    clean = _supervised(args.trials, chunk_size=args.chunk_size)
    clean_s = time.perf_counter() - start

    start = time.perf_counter()
    governed = _supervised(
        args.trials, chunk_size=args.chunk_size, memory_budget_mb=4096
    )
    governed_s = time.perf_counter() - start

    start = time.perf_counter()
    faulted = _supervised(
        args.trials, faults=FAULTS, chunk_size=args.chunk_size
    )
    faulted_s = time.perf_counter() - start

    # Transient faults and a never-firing budget must both be invisible
    # in the aggregates.
    for pair in bare:
        for run in (clean, governed, faulted):
            assert run[pair].trials == bare[pair].trials
            assert run[pair].times_created == bare[pair].times_created
            assert run[pair].exceptions == bare[pair].exceptions
            assert not run[pair].quarantined

    # Store durability clean path: checksummed record + verify read,
    # without and with a (never-evicting) disk budget.
    import tempfile

    with tempfile.TemporaryDirectory() as warm_dir:
        _store_round(warm_dir, 1)  # imports + codec warm-up, untimed
    with tempfile.TemporaryDirectory() as plain_dir:
        start = time.perf_counter()
        _store_round(plain_dir, args.store_seeds)
        store_plain_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as quota_dir:
        start = time.perf_counter()
        _store_round(quota_dir, args.store_seeds, max_bytes=1 << 30)
        store_quota_s = time.perf_counter() - start

    record = {
        "benchmark": "supervisor-resilience",
        "workload": "figure1",
        "pairs": len(PAIRS),
        "trials_per_pair": args.trials,
        "chunk_size": args.chunk_size,
        "cpu_count": os.cpu_count(),
        "env": environment_metadata(),
        "bare_s": round(bare_s, 4),
        "supervised_clean_s": round(clean_s, 4),
        "governed_clean_s": round(governed_s, 4),
        "supervised_faulted_s": round(faulted_s, 4),
        "clean_overhead_ratio": round(clean_s / bare_s, 3) if bare_s else None,
        #: memory budget armed (never fires) on top of supervision — the
        #: resource-governance clean-path cost; the ISSUE-7 bar is <= 1.05.
        "governed_overhead_ratio": (
            round(governed_s / clean_s, 3) if clean_s else None
        ),
        "faulted_overhead_ratio": (
            round(faulted_s / bare_s, 3) if bare_s else None
        ),
        "store_seeds": args.store_seeds,
        "store_record_verify_s": round(store_plain_s, 4),
        "store_quota_record_verify_s": round(store_quota_s, 4),
        #: disk budget armed (never evicts) on top of checksummed
        #: record+verify — the quota clean-path cost.
        "store_quota_overhead_ratio": (
            round(store_quota_s / store_plain_s, 3) if store_plain_s else None
        ),
        "injected_faults": [
            f"{s.phase}:{s.index}:{s.kind}" for s in FAULTS.specs
        ],
        "verdicts_identical": True,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
