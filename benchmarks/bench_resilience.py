"""Supervisor overhead: what does the failure story cost a clean campaign?

The campaign supervisor wraps every task in a deadline/retry/quarantine
envelope and (optionally) a checkpoint journal.  On a fault-free campaign
all of that machinery is pure overhead, so this benchmark measures the
same Phase-2 campaign three ways:

* the bare serial loop (no supervision at all);
* the supervised inline path (deadline + retry armed, no faults fire);
* a supervised run with injected transient faults (one crash, one hang,
  one malformed result), which pays real retry work.

Two entry points:

* under pytest (``pytest benchmarks/bench_resilience.py --benchmark-only``)
  each configuration is a ``benchmark`` case;
* as a script (``python benchmarks/bench_resilience.py``) it prints the
  comparison and writes a ``BENCH_resilience.json`` overhead record for
  the perf trajectory.
"""

import json
import os
import time

from repro.core import fuzz_races
from repro.core.faults import FaultPlan, FaultSpec
from repro.obs import environment_metadata
from repro.workloads import figure1

PAIRS = [figure1.REAL_PAIR, figure1.FALSE_PAIR]

#: Transient faults only — every retry succeeds, nothing is quarantined,
#: so the faulted campaign's verdicts still match the bare run.
FAULTS = FaultPlan(
    [
        FaultSpec(kind="crash", index=0, attempts=1),
        FaultSpec(kind="hang", index=2, attempts=1, delay=0.3),
        FaultSpec(kind="malformed", index=4, attempts=1),
    ]
)


def _bare(trials):
    return fuzz_races(figure1.build(), PAIRS, trials=trials)


def _supervised(trials, faults=None, chunk_size=5):
    return fuzz_races(
        figure1.build(),
        PAIRS,
        trials=trials,
        chunk_size=chunk_size,
        deadline=10.0,
        retries=2,
        faults=faults,
    )


def test_bare_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _bare(quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real


def test_supervised_clean_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _supervised(quick_trials))
    assert verdicts[figure1.REAL_PAIR].is_real
    assert not any(v.quarantined for v in verdicts.values())


def test_supervised_faulted_campaign(benchmark, quick_trials):
    verdicts = benchmark(lambda: _supervised(quick_trials, faults=FAULTS))
    assert verdicts[figure1.REAL_PAIR].is_real
    assert not any(v.quarantined for v in verdicts.values())


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--chunk-size", type=int, default=5)
    parser.add_argument("--output", default="BENCH_resilience.json")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    bare = _bare(args.trials)
    bare_s = time.perf_counter() - start

    start = time.perf_counter()
    clean = _supervised(args.trials, chunk_size=args.chunk_size)
    clean_s = time.perf_counter() - start

    start = time.perf_counter()
    faulted = _supervised(
        args.trials, faults=FAULTS, chunk_size=args.chunk_size
    )
    faulted_s = time.perf_counter() - start

    # Transient faults must be invisible in the aggregates.
    for pair in bare:
        for run in (clean, faulted):
            assert run[pair].trials == bare[pair].trials
            assert run[pair].times_created == bare[pair].times_created
            assert run[pair].exceptions == bare[pair].exceptions
            assert not run[pair].quarantined

    record = {
        "benchmark": "supervisor-resilience",
        "workload": "figure1",
        "pairs": len(PAIRS),
        "trials_per_pair": args.trials,
        "chunk_size": args.chunk_size,
        "cpu_count": os.cpu_count(),
        "env": environment_metadata(),
        "bare_s": round(bare_s, 4),
        "supervised_clean_s": round(clean_s, 4),
        "supervised_faulted_s": round(faulted_s, 4),
        "clean_overhead_ratio": round(clean_s / bare_s, 3) if bare_s else None,
        "faulted_overhead_ratio": (
            round(faulted_s / bare_s, 3) if bare_s else None
        ),
        "injected_faults": [
            f"{s.phase}:{s.index}:{s.kind}" for s in FAULTS.specs
        ],
        "verdicts_identical": True,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
