"""Experiment E7 — the Figure 2 / Section 3.2 probability series.

Each benchmark point measures one padding value of the Figure 2 program:
the timed body runs RaceFuzzer and the passive scheduler ``runs`` times
each; the regenerated series (RF P(race), RF P(ERROR), passive
P(adjacent), passive P(ERROR)) lands in ``extra_info``.  The paper's claim
to check across points: the RF columns are flat (1.0 / ~0.5) while the
passive columns decay with padding.
"""

import pytest

from repro.harness.figure2_prob import measure_point

PADDINGS = [0, 2, 5, 10, 20, 40]


@pytest.mark.parametrize("padding", PADDINGS)
def test_probability_point(benchmark, padding):
    point = benchmark.pedantic(
        lambda: measure_point(padding, runs=40), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "padding": padding,
            "rf_race_probability": point.rf_race_probability,
            "rf_error_probability": point.rf_error_probability,
            "simple_adjacent_probability": point.simple_adjacent_probability,
            "simple_error_probability": point.simple_error_probability,
        }
    )
    print(
        f"\npadding={padding}: RF P(race)={point.rf_race_probability:.2f} "
        f"RF P(err)={point.rf_error_probability:.2f} "
        f"passive P(adj)={point.simple_adjacent_probability:.2f} "
        f"passive P(err)={point.simple_error_probability:.2f}"
    )
    # Section 3.2's claims, asserted on every regenerated point:
    assert point.rf_race_probability == 1.0
    assert point.rf_error_probability >= 0.2
    assert point.simple_error_probability <= point.rf_error_probability
