"""Record-once / analyze-many: what does the trace layer actually buy?

The trace layer's thesis is that executions are the expensive half of
Phase 1 and detector passes over the event stream are the cheap half.
This benchmark measures that claim three ways on real workloads:

* **cold vs warm cache** — ``detect_races(trace_dir=...)`` timed twice
  against the same store: the first call records every seed, the second
  replays with zero program executions;
* **one-execution-many-detectors vs N executions** — all three detectors
  over the classic path (one execution per (seed, detector) when run
  separately) vs one recorded execution per seed analyzed three times;
* **trace sizes** — bytes per recorded execution, plain and gzip.

Two entry points:

* under pytest (``pytest benchmarks/bench_trace.py --benchmark-only``)
  the cold/warm pair are ``benchmark`` cases;
* as a script (``python benchmarks/bench_trace.py``) it prints the
  comparison and writes a ``BENCH_trace.json`` record for the perf
  trajectory.
"""

import json
import os
import shutil
import tempfile
import time

from repro.core import detect_races
from repro.obs import environment_metadata
from repro.trace import TraceStore, analyze_trace, detect_key
from repro.workloads import get

DETECTORS = ("hybrid", "happens-before", "lockset")


def _detect(workload, trace_dir=None, detector="hybrid", seeds=(0, 1, 2), cap=20_000):
    spec = get(workload)
    return detect_races(
        spec.build(),
        detector=detector,
        seeds=seeds,
        max_steps=min(spec.max_steps, cap),
        trace_dir=trace_dir,
    )


def test_cold_cache_detect(benchmark):
    def cold():
        with tempfile.TemporaryDirectory() as d:
            return _detect("figure1", trace_dir=d)

    assert len(benchmark(cold)) == 1


def test_warm_cache_detect(benchmark, tmp_path):
    _detect("figure1", trace_dir=tmp_path)  # prime
    report = benchmark(lambda: _detect("figure1", trace_dir=tmp_path))
    assert len(report) == 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", default="figure1,philosophers,moldyn")
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--step-cap", type=int, default=20_000)
    parser.add_argument("--output", default="BENCH_trace.json")
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    seeds = tuple(range(args.seeds))
    rows = []
    for workload in workloads:
        spec = get(workload)
        cap = min(spec.max_steps, args.step_cap)
        trace_dir = tempfile.mkdtemp(prefix=f"bench-trace-{workload}-")
        try:
            # -- cold vs warm ------------------------------------------- #
            cold_report, cold_s = _timed(
                lambda: _detect(workload, trace_dir, seeds=seeds, cap=cap)
            )
            warm_report, warm_s = _timed(
                lambda: _detect(workload, trace_dir, seeds=seeds, cap=cap)
            )
            assert warm_report == cold_report, "warm cache changed the report"
            store = TraceStore(trace_dir)
            assert store.stats.executions == 0  # measured claim: zero warm runs

            # -- one-execution-many-detectors vs N executions ----------- #
            _, classic_s = _timed(
                lambda: [
                    _detect(workload, None, detector=d, seeds=seeds, cap=cap)
                    for d in DETECTORS
                ]
            )
            _, shared_s = _timed(
                lambda: _detect(
                    workload, trace_dir, detector=DETECTORS, seeds=seeds, cap=cap
                )
            )

            # -- trace sizes -------------------------------------------- #
            plain_bytes = sum(p.stat().st_size for p in store.entries())
            gz_dir = tempfile.mkdtemp(prefix=f"bench-trace-gz-{workload}-")
            try:
                gz_store = TraceStore(gz_dir, compress=True)
                for seed in seeds:
                    gz_store.ensure(
                        detect_key(workload, seed, max_steps=cap), spec.build()
                    )
                gz_bytes = sum(p.stat().st_size for p in gz_store.entries())
            finally:
                shutil.rmtree(gz_dir, ignore_errors=True)

            rows.append(
                {
                    "workload": workload,
                    "seeds": len(seeds),
                    "max_steps": cap,
                    "cold_s": round(cold_s, 4),
                    "warm_s": round(warm_s, 4),
                    "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
                    "classic_3_detectors_s": round(classic_s, 4),
                    "traced_3_detectors_s": round(shared_s, 4),
                    "record_once_speedup": (
                        round(classic_s / shared_s, 2) if shared_s else None
                    ),
                    "trace_bytes": plain_bytes,
                    "trace_bytes_gz": gz_bytes,
                    "gz_ratio": round(gz_bytes / plain_bytes, 3)
                    if plain_bytes
                    else None,
                }
            )
        finally:
            shutil.rmtree(trace_dir, ignore_errors=True)

    record = {
        "benchmark": "trace-record-once-analyze-many",
        "detectors": list(DETECTORS),
        "cpu_count": os.cpu_count(),
        "env": environment_metadata(),
        "warm_cache_executions": 0,
        "rows": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
