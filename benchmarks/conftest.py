"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one artifact of the paper's evaluation (see
DESIGN.md's experiment index); the regenerated rows/series are attached to
the benchmark records as ``extra_info`` and also printed (visible with
``-s`` or in the saved benchmark JSON).
"""

import pytest


@pytest.fixture
def quick_trials():
    """Phase 2 trials used inside timed benchmark bodies."""
    return 20
