"""Scaling ablation: does the Figure 2 claim survive problem size, and how
does engine cost grow with it?

Three sweeps:

* RaceFuzzer run time on Figure 2 as padding grows (cost is linear in
  program length; the *probability* column of bench_figure2_probability
  stays flat — together they are the paper's Section 3.2 story);
* moldyn run time as the particle count grows, with and without the
  hybrid detector (the detector's per-access cost compounds with
  all-pairs force computation);
* RaceFuzzer on moldyn as thread count grows (more threads = more
  postponement candidates per racing statement).
"""

import pytest

from repro.core import RaceFuzzer, RandomScheduler, detect_races
from repro.detectors import HybridRaceDetector
from repro.runtime import Execution
from repro.workloads import figure2, moldyn


class TestPaddingScaling:
    @pytest.mark.parametrize("padding", [10, 40, 160])
    def test_racefuzzer_cost_grows_linearly(self, benchmark, padding):
        fuzzer = RaceFuzzer(figure2.RACING_PAIR)
        seed = [0]

        def run():
            seed[0] += 1
            return fuzzer.run(figure2.build(padding), seed=seed[0])

        outcome = benchmark(run)
        assert outcome.created  # probability stays 1.0 at every size
        benchmark.extra_info["padding"] = padding


class TestParticleScaling:
    @pytest.mark.parametrize("particles", [4, 8, 12])
    def test_normal_run(self, benchmark, particles):
        program = moldyn.build(particles=particles)
        seed = [0]

        def run():
            seed[0] += 1
            return Execution(program, seed=seed[0], max_steps=2_000_000).run(
                RandomScheduler("sync")
            )

        result = benchmark(run)
        benchmark.extra_info["particles"] = particles
        benchmark.extra_info["steps"] = result.steps

    @pytest.mark.parametrize("particles", [4, 8, 12])
    def test_hybrid_run(self, benchmark, particles):
        program = moldyn.build(particles=particles)
        seed = [0]

        def run():
            seed[0] += 1
            detector = HybridRaceDetector()
            return Execution(
                program, seed=seed[0], observers=[detector], max_steps=2_000_000
            ).run(RandomScheduler("every"))

        benchmark(run)
        benchmark.extra_info["particles"] = particles


class TestThreadScaling:
    @pytest.mark.parametrize("nthreads", [2, 3, 4])
    def test_racefuzzer_with_more_workers(self, benchmark, nthreads):
        program = moldyn.build(nthreads=nthreads, particles=6)
        pair = detect_races(program, seeds=(0,), max_steps=2_000_000).pairs[0]
        fuzzer = RaceFuzzer(pair, max_steps=2_000_000)
        seed = [0]

        def run():
            seed[0] += 1
            return fuzzer.run(program, seed=seed[0])

        outcome = benchmark(run)
        benchmark.extra_info["nthreads"] = nthreads
        assert not outcome.result.truncated
